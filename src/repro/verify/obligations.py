"""Proof obligations, results and reports.

The paper's method is to decompose a scheduler "into multiple operations
that can be verified in isolation, thus simplifying the proving effort".
This module is the bookkeeping for that decomposition: each isolated
property is an :class:`Obligation`; checking it against a policy at a
scope yields a :class:`ProofResult` that is either *proved at scope* or
*refuted* with a concrete :class:`Counterexample`; a set of results forms
a :class:`ProofReport`.

"Proved at scope" is this reproduction's honest substitute for Leon's
unbounded proofs: the obligation was checked exhaustively over every
state within an explicit finite scope (see
:mod:`repro.verify.enumeration`). All the paper's obligations are
∀-statements over integer load vectors whose behaviour classes are small,
so small-scope exhaustion plus the potential-function certificate (which
*is* unbounded — see :mod:`repro.verify.potential`) covers the paper's
proof structure end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class ProofStatus(Enum):
    """Outcome of checking one obligation."""

    PROVED_AT_SCOPE = "proved_at_scope"  #: held for every state in scope
    REFUTED = "refuted"                  #: a counterexample was found
    INAPPLICABLE = "inapplicable"        #: obligation does not apply to this policy


@dataclass(frozen=True)
class Obligation:
    """One isolated property of a policy.

    Attributes:
        key: stable machine-readable identifier (e.g. ``"lemma1"``).
        title: short human-readable name.
        paper_ref: where the obligation comes from in the paper.
        statement: the property in words, ∀-quantified over the scope.
    """

    key: str
    title: str
    paper_ref: str
    statement: str


@dataclass(frozen=True)
class Counterexample:
    """A concrete state (plus context) falsifying an obligation.

    Attributes:
        state: the load vector (or richer state) where the property fails.
        detail: human-readable explanation of what went wrong.
        data: machine-readable extras (thief/victim ids, trace, ...).
    """

    state: tuple[Any, ...]
    detail: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"state={self.state}: {self.detail}"


@dataclass
class ProofResult:
    """The result of checking one obligation for one policy.

    Attributes:
        obligation: the property that was checked.
        policy_name: the policy it was checked against.
        status: proved at scope / refuted / inapplicable.
        scope: human-readable description of the scope swept.
        states_checked: number of (state, case) pairs examined.
        counterexample: present iff ``status`` is ``REFUTED``.
        elapsed_s: wall-clock seconds spent checking.
    """

    obligation: Obligation
    policy_name: str
    status: ProofStatus
    scope: str
    states_checked: int = 0
    counterexample: Counterexample | None = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the obligation holds (at scope) for the policy."""
        return self.status is not ProofStatus.REFUTED

    def __str__(self) -> str:
        mark = {
            ProofStatus.PROVED_AT_SCOPE: "PROVED",
            ProofStatus.REFUTED: "REFUTED",
            ProofStatus.INAPPLICABLE: "N/A",
        }[self.status]
        base = (
            f"[{mark}] {self.obligation.key} for {self.policy_name}"
            f" ({self.states_checked} states, scope: {self.scope})"
        )
        if self.counterexample is not None:
            base += f"\n        counterexample: {self.counterexample}"
        return base


@dataclass
class ProofReport:
    """All obligation results for one policy (or one campaign).

    Attributes:
        policy_name: the policy under verification.
        results: individual obligation results, in check order.
    """

    policy_name: str
    results: list[ProofResult] = field(default_factory=list)

    def add(self, result: ProofResult) -> None:
        """Append a result to the report."""
        self.results.append(result)

    @property
    def all_proved(self) -> bool:
        """Whether every applicable obligation was proved at scope."""
        return all(r.ok for r in self.results)

    @property
    def refuted(self) -> list[ProofResult]:
        """The obligations that were refuted."""
        return [r for r in self.results if not r.ok]

    def result_for(self, key: str) -> ProofResult:
        """Return the result for obligation ``key``.

        Raises:
            KeyError: when the report holds no such obligation.
        """
        for result in self.results:
            if result.obligation.key == key:
                return result
        raise KeyError(f"no result for obligation {key!r}")

    def render(self) -> str:
        """Multi-line human-readable report."""
        verdict = "ALL PROVED (at scope)" if self.all_proved else "REFUTED"
        lines = [
            f"Proof report for {self.policy_name}: {verdict}",
            "-" * 64,
        ]
        lines.extend(str(result) for result in self.results)
        return "\n".join(lines)


class timed_check:
    """Context manager measuring the wall-clock time of a check.

    Usage::

        with timed_check() as timer:
            ...sweep states...
        result.elapsed_s = timer.elapsed
    """

    def __enter__(self) -> "timed_check":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


# ---------------------------------------------------------------------------
# The obligation catalogue (the paper's proof decomposition)
# ---------------------------------------------------------------------------

LEMMA1 = Obligation(
    key="lemma1",
    title="Idle cores want to steal from overloaded cores (Listing 2)",
    paper_ref="Section 4.2, Listing 2",
    statement=(
        "For every idle thief: if any core is overloaded then the filter"
        " keeps at least one core; and every core the filter keeps is"
        " overloaded."
    ),
)

FILTER_SOUNDNESS = Obligation(
    key="filter_soundness",
    title="Filtered victims always have a stealable task",
    paper_ref="Section 4.2 (soundness of filter)",
    statement=(
        "For every thief (idle or not): any core the filter keeps has at"
        " least one ready task — the running task can never be stolen, so"
        " selecting a victim without ready tasks guarantees a wasted"
        " stealing phase."
    ),
)

STEAL_SOUNDNESS = Obligation(
    key="steal_soundness",
    title="Stealing cannot idle the victim nor overshoot the thief",
    paper_ref="Section 4.2 (soundness of stealCore)",
    statement=(
        "For every pair passing the filter, executing the steal leaves the"
        " victim non-idle, moves at least one task, and strictly shrinks"
        " the pairwise absolute load difference without making the thief"
        " exceed the victim."
    ),
)

POTENTIAL_DECREASE = Obligation(
    key="potential_decrease",
    title="The load-difference potential strictly decreases per steal",
    paper_ref="Section 4.3 (second proof)",
    statement=(
        "d(c1..cn) = sum over i,j of |load_i - load_j| strictly decreases"
        " on every successful steal, for every state in scope and every"
        " filtered pair; hence the number of successful steals from any"
        " state is at most d/2."
    ),
)

CHOICE_IRRELEVANCE = Obligation(
    key="choice_irrelevance",
    title="Any candidate choice preserves the steal obligations",
    paper_ref="Section 3.1 ('the exact choice of the core does not matter')",
    statement=(
        "For every state, every thief and every candidate kept by the"
        " filter (not only the policy's preferred one), the steal"
        " obligations hold — so step 2 may implement any heuristic."
    ),
)

FAILURE_ATTRIBUTION = Obligation(
    key="failure_attribution",
    title="Every failed steal is caused by a concurrent successful steal",
    paper_ref="Section 4.3 (first proof)",
    statement=(
        "In every concurrent round, every attempt that selected a victim"
        " but failed was invalidated by an earlier successful steal (or an"
        " in-flight lock holder) touching its thief or victim runqueue."
    ),
)

WORK_CONSERVATION = Obligation(
    key="work_conservation",
    title="After finitely many rounds, no core idles while another overloads",
    paper_ref="Section 3.2 (definition), Section 4.3 (proof sketch)",
    statement=(
        "For every initial state in scope and every adversarial"
        " interleaving and choice, there is a bounded N after which no"
        " core is idle while any core is overloaded."
    ),
)

PROGRESS = Obligation(
    key="progress",
    title="Every round with steal intents commits at least one steal",
    paper_ref="Section 4.3 (combining the two proofs)",
    statement=(
        "In the serialized-concurrent regime, if any core produced a steal"
        " intent then the first executed attempt succeeds, so non-quiet"
        " rounds always make progress and failures cannot repeat forever."
    ),
)

GOOD_STATE_CLOSURE = Obligation(
    key="good_state_closure",
    title="Work-conserving states stay work-conserving",
    paper_ref="Section 3.2 (the condition must persist, not merely occur)",
    statement=(
        "From any state with no idle-while-overloaded condition, every"
        " successor state under every adversarial round is again free of"
        " the condition."
    ),
)

ALL_OBLIGATIONS = (
    LEMMA1,
    FILTER_SOUNDNESS,
    STEAL_SOUNDNESS,
    POTENTIAL_DECREASE,
    CHOICE_IRRELEVANCE,
    FAILURE_ATTRIBUTION,
    WORK_CONSERVATION,
    PROGRESS,
    GOOD_STATE_CLOSURE,
)

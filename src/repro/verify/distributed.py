"""Distributed verification: coordinator/worker shard dispatch.

:mod:`repro.verify.parallel` made the §4 pipeline shard-parallel on one
host; this module lets the shards leave the machine. A
:class:`Coordinator` hands the same :class:`~repro.verify.parallel.
ShardSpec`/campaign-slice tasks to workers over a pluggable transport,
collects the picklable shard results, and folds them through the
*unchanged* merge reducers — so the distributed verdict is byte-identical
to the pool engine's, which is byte-identical to the serial path.

Architecture
------------

* **Transports** (:class:`WorkerClient` implementations) — where a task
  runs:

  - :class:`InProcessTransport` executes tasks in the coordinator
    process, round-tripping every message through the wire encoding
    (tests and a zero-setup fallback);
  - :class:`SocketTransport` speaks the length-prefixed frame protocol
    of :mod:`repro.verify.wire` over TCP to a ``python -m repro worker
    --listen HOST:PORT`` process anywhere on the network;
  - :class:`LocalWorkerPool` spawns ``N`` worker subprocesses on
    localhost (each listening on an OS-assigned port) and connects a
    :class:`SocketTransport` to each — the reference deployment behind
    ``--distributed N``, exercising the full network stack without
    needing a second machine.

* **Scheduling** — :meth:`Coordinator.map` fans a task list across all
  live workers (one dispatch thread per worker pulling from a shared
  queue) and returns results in task order. Workers send heartbeat
  frames while computing; a worker that disconnects, times out past the
  coordinator's patience, or dies mid-task is retired and its in-flight
  task is *reassigned* to the survivors — a lost worker degrades to
  re-dispatch instead of a hung proof. Reassignment is sound because
  every task is a pure function of its payload: re-running shard ``k``
  elsewhere yields the identical shard result.

* **BFS frontier exchange** — the model checker's closure exploration
  reuses :func:`~repro.verify.parallel.bfs_closure` with chunks shipped
  as :class:`~repro.verify.wire.ExpandTask` batches: one round trip per
  BFS level, with the coordinator deduplicating canonical states between
  levels, so exploration works over high-latency links (cost per level
  is one exchange, not one per state). Workers memoize one
  :class:`~repro.verify.model_checker.ModelChecker` per checker config,
  so their transition caches persist across every level of a proof.

Determinism: shard count is fixed at dispatch time (one shard per worker
known at the start of the run), merge reducers are order-independent,
and reassignment re-runs pure tasks — so worker deaths, scheduling, and
network timing cannot change a verdict.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import threading
import traceback
from collections import deque
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import VerificationError
from repro.topology.numa import NumaTopology
from repro.verify.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.verify.enumeration import StateScope
from repro.verify.hierarchical import HierarchySpec, build_checker
from repro.verify.model_checker import (
    ModelChecker,
    TransitionGraph,
    WorkConservationAnalysis,
)
from repro.verify.symmetry import SymmetryGroup, resolve_symmetry
from repro.verify.obligations import timed_check
from repro.verify.parallel import (
    LivenessShardResult,
    SweepShardResult,
    assemble_certificate,
    bfs_closure,
    liveness_shard_worker,
    make_campaign_tasks,
    make_shard_specs,
    merge_campaign_reports,
    sweep_shard_worker,
)
from repro.verify.transition import DEFAULT_MAX_ORDERS
from repro.verify.wire import (
    ERROR,
    FORMAT_JSON,
    HEARTBEAT,
    HELLO,
    PING,
    PONG,
    RESULT,
    SHUTDOWN,
    TASK,
    CampaignTask,
    CheckerConfig,
    ConnectionClosed,
    ExpandTask,
    LivenessTask,
    SweepTask,
    WireMessage,
    WireProtocolError,
    decode_message,
    encode_message,
    hello_payload,
    recv_message,
    send_message,
)
from repro.verify.work_conservation import WorkConservationCertificate

#: Default seconds between worker heartbeat frames during a task.
DEFAULT_HEARTBEAT_S = 1.0

#: Default seconds of frame silence before a worker is presumed dead.
DEFAULT_PATIENCE_S = 30.0

#: Default cap on how many times one task may be reassigned.
DEFAULT_MAX_REASSIGNMENTS = 3


class WorkerLost(VerificationError):
    """Transport-level worker failure; the coordinator reassigns."""


class TaskFailed(VerificationError):
    """A task raised inside a worker; deterministic, so never reassigned."""


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` with a validated port range.

    The single parser behind ``--listen``, ``--workers`` and
    :func:`connect_workers`, so every surface rejects a malformed
    endpoint with the same one-line error instead of a downstream
    ``bind()``/``connect()`` traceback.

    Raises:
        VerificationError: not ``HOST:PORT``, or port outside 0..65535.
    """
    host, _, port_text = text.strip().rpartition(":")
    if not host or not port_text.isdigit():
        raise VerificationError(
            f"endpoint {text!r} is not HOST:PORT"
        )
    port = int(port_text)
    if port > 65535:
        raise VerificationError(
            f"endpoint {text!r}: port must be 0..65535"
        )
    return host, port


def _enable_keepalive(sock: socket.socket) -> None:
    """Arm TCP keepalive so a half-open peer cannot wedge a blocking read.

    A coordinator host that hard-crashes (no FIN) would otherwise leave
    the single-connection worker blocked in ``recv`` forever, deaf to
    every future coordinator. With these (platform-gated) knobs the OS
    declares the peer dead after ~2 minutes of silence and the read
    fails over to the accept loop.
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        for name, value in (("TCP_KEEPIDLE", 60), ("TCP_KEEPINTVL", 10),
                            ("TCP_KEEPCNT", 6)):
            if hasattr(socket, name):
                sock.setsockopt(socket.IPPROTO_TCP,
                                getattr(socket, name), value)
    except OSError:
        pass  # keepalive is an optimisation, never a requirement


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class WorkerRuntime:
    """Executes wire task payloads; the single worker-side entry point.

    Keeps one memoized :class:`ModelChecker` per distinct
    :class:`CheckerConfig` so successive :class:`ExpandTask` batches of
    the same proof hit warm transition caches — the worker-side half of
    the "within each shard" memoization the pool engine gets from its
    process initializer.
    """

    def __init__(self) -> None:
        self._checkers: dict[bytes, ModelChecker] = {}

    def _checker_for(self, config: CheckerConfig) -> ModelChecker:
        key = config.cache_key()
        checker = self._checkers.get(key)
        if checker is None:
            checker = build_checker(
                config.policy,
                choice_mode=config.choice_mode,
                max_orders=config.max_orders,
                symmetric=config.symmetric,
                symmetry=config.symmetry,
                topology=config.topology,
                hierarchy=config.hierarchy,
            )
            self._checkers[key] = checker
        return checker

    def execute(self, task: Any) -> Any:
        """Run one task payload and return its (picklable) result.

        Raises:
            WireProtocolError: payload is not a known task type.
        """
        if isinstance(task, SweepTask):
            return sweep_shard_worker(task.spec)
        if isinstance(task, LivenessTask):
            return liveness_shard_worker(task.spec)
        if isinstance(task, ExpandTask):
            return self._expand(task)
        if isinstance(task, CampaignTask):
            return run_campaign(task.replicator, task.config)
        raise WireProtocolError(
            f"unknown task payload {type(task).__name__!r}"
        )

    def _expand(self, task: ExpandTask):
        checker = self._checker_for(task.config)
        if task.codec is not None:
            # Wire v3: packed frontier chunk in, packed graph out.
            return checker.expand_packed(task.packed, task.codec,
                                         sequential=task.sequential)
        edges: TransitionGraph = {}
        truncated = False
        for state in task.states:
            succ, trunc = checker.successors(state,
                                             sequential=task.sequential)
            truncated = truncated or trunc
            edges[state] = succ
        return edges, truncated


class WorkerServer:
    """A TCP worker: accepts coordinators, executes tasks, heartbeats.

    One coordinator connection is served at a time (shard dispatch gives
    every worker exactly one coordinator); after a coordinator
    disconnects the server keeps accepting, so a long-lived ``python -m
    repro worker --listen`` terminal serves any number of consecutive
    proof runs. A ``shutdown`` frame stops the server for good.

    Attributes:
        host: bind address.
        port: bind port (0 lets the OS choose; see :attr:`bound_port`).
        heartbeat_s: seconds between heartbeat frames during a task.
    """

    #: Floor on the heartbeat interval: below this a task would spin the
    #: serving thread and flood the socket instead of computing.
    MIN_HEARTBEAT_S = 0.05

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        self.host = host
        self.port = port
        self.heartbeat_s = max(heartbeat_s, self.MIN_HEARTBEAT_S)
        self.bound_port: int | None = None
        self._shutdown = threading.Event()
        self._server: socket.socket | None = None

    def shutdown(self) -> None:
        """Ask :meth:`serve_forever` to stop after the current connection."""
        self._shutdown.set()

    def serve_forever(
        self, announce: Callable[[str], None] | None = None,
        ready: threading.Event | None = None,
    ) -> None:
        """Bind, announce ``listening on HOST:PORT``, and serve.

        Args:
            announce: sink for the one announcement line (defaults to
                printing on stdout, which ``LocalWorkerPool`` parses to
                learn OS-assigned ports).
            ready: optional event set once the socket is listening
                (threaded tests synchronise on it).
        """
        with socket.create_server(
            (self.host, self.port), reuse_port=False
        ) as server:
            self._server = server
            self.bound_port = server.getsockname()[1]
            line = f"repro-worker listening on {self.host}:{self.bound_port}"
            if announce is None:
                print(line, flush=True)
            else:
                announce(line)
            if ready is not None:
                ready.set()
            server.settimeout(0.2)
            while not self._shutdown.is_set():
                try:
                    conn, _addr = server.accept()
                except socket.timeout:
                    continue
                with conn:
                    conn.settimeout(None)
                    _enable_keepalive(conn)
                    self._serve_connection(conn)
        self._server = None

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one coordinator until it hangs up or shuts us down.

        Each connection gets a private :class:`WorkerRuntime`: checker
        memos only pay off within one proof run (one connection), and a
        task thread orphaned by a vanished coordinator must not share
        mutable state with the next coordinator's tasks. (The orphan
        itself runs to completion of its one task and exits — pure
        Python compute cannot be cancelled preemptively.)
        """
        runtime = WorkerRuntime()
        while True:
            try:
                message = recv_message(conn)
            except (ConnectionClosed, OSError):
                return
            except WireProtocolError as exc:
                # Tell the peer why before hanging up — this is how a
                # coordinator from another release learns it is a
                # version mismatch rather than a dead worker.
                try:
                    send_message(
                        conn,
                        WireMessage(kind=ERROR,
                                    payload={"traceback": str(exc)}),
                        fmt=FORMAT_JSON,
                    )
                except OSError:
                    pass
                return
            try:
                if message.kind == HELLO:
                    send_message(
                        conn, WireMessage(kind=HELLO,
                                          payload=hello_payload()),
                        fmt=FORMAT_JSON,
                    )
                elif message.kind == PING:
                    send_message(conn, WireMessage(kind=PONG),
                                 fmt=FORMAT_JSON)
                elif message.kind == SHUTDOWN:
                    self._shutdown.set()
                    return
                elif message.kind == TASK:
                    self._serve_task(conn, message, runtime)
                else:
                    return  # kinds a worker never receives
            except (ConnectionClosed, OSError):
                return

    def _serve_task(self, conn: socket.socket, message: WireMessage,
                    runtime: WorkerRuntime) -> None:
        """Execute one task, heartbeating until the result is ready."""
        box: list[tuple[str, Any]] = []

        def run() -> None:
            try:
                box.append((RESULT, runtime.execute(message.payload)))
            except BaseException:
                box.append((ERROR, traceback.format_exc()))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        while True:
            thread.join(self.heartbeat_s)
            if not thread.is_alive():
                break
            send_message(
                conn,
                WireMessage(kind=HEARTBEAT, task_id=message.task_id),
                fmt=FORMAT_JSON,
            )
        kind, value = box[0]
        if kind == RESULT:
            send_message(conn, WireMessage(kind=RESULT,
                                           task_id=message.task_id,
                                           payload=value))
        else:
            send_message(
                conn,
                WireMessage(kind=ERROR, task_id=message.task_id,
                            payload={"traceback": value}),
                fmt=FORMAT_JSON,
            )


# ---------------------------------------------------------------------------
# coordinator side: transports
# ---------------------------------------------------------------------------


class WorkerClient:
    """One dispatchable worker, however its tasks actually run.

    Subclasses implement :meth:`submit` (run one task payload to
    completion, raising :class:`WorkerLost` on transport death and
    :class:`TaskFailed` on an in-task exception) and :meth:`close`.
    A client is used by at most one coordinator thread at a time.
    """

    name = "worker"

    def submit(self, task_id: int, payload: Any) -> Any:
        raise NotImplementedError

    def close(self, shutdown: bool = False) -> None:
        """Release the transport; ``shutdown`` also stops the worker."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class InProcessTransport(WorkerClient):
    """Executes tasks in the coordinator process, through the wire.

    Every task and result round-trips through
    :func:`~repro.verify.wire.encode_message` /
    :func:`~repro.verify.wire.decode_message`, so anything that would not
    survive a real network hop fails here too — which is what makes the
    in-process equivalence tests meaningful.
    """

    def __init__(self, name: str = "in-process") -> None:
        self.name = name
        self._runtime = WorkerRuntime()

    def submit(self, task_id: int, payload: Any) -> Any:
        request = decode_message(encode_message(
            WireMessage(kind=TASK, task_id=task_id, payload=payload)
        ))
        try:
            result = self._runtime.execute(request.payload)
        except Exception as exc:
            raise TaskFailed(
                f"task {task_id} failed on {self.name}: {exc}"
            ) from exc
        reply = decode_message(encode_message(
            WireMessage(kind=RESULT, task_id=task_id, payload=result)
        ))
        return reply.payload


class SocketTransport(WorkerClient):
    """A persistent TCP connection to one :class:`WorkerServer`.

    Connects and handshakes eagerly in the constructor (version mismatch
    fails the run before any shard is dispatched, not mid-proof). While a
    task runs the worker heartbeats every ``heartbeat_s``; a silence
    longer than ``patience_s`` — no heartbeat, no result — means the
    worker is dead or wedged, and :meth:`submit` raises
    :class:`WorkerLost` so the coordinator can reassign.
    """

    def __init__(self, host: str, port: int,
                 patience_s: float = DEFAULT_PATIENCE_S,
                 connect_timeout_s: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.patience_s = patience_s
        self.name = f"{host}:{port}"
        self._sock: socket.socket | None = None
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout_s
            )
            self._sock.settimeout(patience_s)
            send_message(self._sock,
                         WireMessage(kind=HELLO, payload=hello_payload()),
                         fmt=FORMAT_JSON)
            reply = recv_message(self._sock)
            if reply.kind == ERROR:
                detail = (reply.payload or {}).get("traceback", "")
                raise WireProtocolError(
                    f"worker {self.name} rejected the handshake: {detail}"
                )
            if reply.kind != HELLO:
                raise WireProtocolError(
                    f"worker {self.name} answered hello with {reply.kind!r}"
                )
        except (OSError, WireProtocolError) as exc:
            self.close()
            raise WorkerLost(
                f"cannot establish worker {self.name}: {exc}"
            ) from exc

    def submit(self, task_id: int, payload: Any) -> Any:
        assert self._sock is not None, "transport is closed"
        try:
            send_message(self._sock, WireMessage(kind=TASK, task_id=task_id,
                                                 payload=payload))
            while True:
                message = recv_message(self._sock)
                if message.kind == HEARTBEAT:
                    continue  # still alive; the recv timeout re-arms
                if message.kind == RESULT:
                    return message.payload
                if message.kind == ERROR:
                    detail = (message.payload or {}).get("traceback", "")
                    raise TaskFailed(
                        f"task {task_id} failed on worker {self.name}:\n"
                        f"{detail}"
                    )
                raise WireProtocolError(
                    f"unexpected {message.kind!r} while awaiting task"
                    f" {task_id}"
                )
        except TaskFailed:
            raise
        except socket.timeout as exc:
            raise WorkerLost(
                f"worker {self.name} silent for {self.patience_s}s"
            ) from exc
        except (OSError, WireProtocolError) as exc:
            raise WorkerLost(f"worker {self.name} lost: {exc}") from exc

    def ping(self) -> bool:
        """Cheap liveness probe outside any task."""
        if self._sock is None:
            return False
        try:
            send_message(self._sock, WireMessage(kind=PING),
                         fmt=FORMAT_JSON)
            return recv_message(self._sock).kind == PONG
        except (OSError, WireProtocolError):
            return False

    def close(self, shutdown: bool = False) -> None:
        if self._sock is None:
            return
        try:
            if shutdown:
                send_message(self._sock, WireMessage(kind=SHUTDOWN),
                             fmt=FORMAT_JSON)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------


class Coordinator:
    """Fans task lists across workers; reassigns on worker loss.

    Attributes:
        max_reassignments: how many times one task may be re-dispatched
            after worker deaths before the run is declared failed.
        on_reassign: optional observer called as ``on_reassign(task_index,
            worker_name)`` whenever a lost worker's in-flight task is
            requeued for the survivors — the hook behind
            :class:`repro.api`'s ``ShardReassigned`` progress events.
            Called from a dispatch thread; it must not block and cannot
            influence scheduling.
    """

    def __init__(self, clients: Sequence[WorkerClient],
                 max_reassignments: int = DEFAULT_MAX_REASSIGNMENTS) -> None:
        if not clients:
            raise VerificationError("a coordinator needs at least one worker")
        self._clients: list[WorkerClient] = list(clients)
        self._retired: list[WorkerClient] = []
        self.max_reassignments = max_reassignments
        self.on_reassign: Callable[[int, str], None] | None = None

    @property
    def n_workers(self) -> int:
        """Live workers — the shard count new dispatches will use."""
        return len(self._clients)

    @property
    def lost_workers(self) -> list[str]:
        """Names of workers retired after transport failures."""
        return [client.name for client in self._retired]

    def map(self, payloads: Sequence[Any]) -> list[Any]:
        """Run every payload on some worker; results in payload order.

        One dispatch thread per live worker pulls tasks from a shared
        queue. A :class:`WorkerLost` retires that worker and requeues its
        task (up to :attr:`max_reassignments` times) for the survivors; a
        :class:`TaskFailed` aborts the whole map — the task is a pure
        function of its payload, so it would fail anywhere.

        Raises:
            WorkerLost: every worker died, or a task exhausted its
                reassignment budget.
            TaskFailed: a task raised inside a worker.
        """
        if not payloads:
            return []
        if not self._clients:
            raise WorkerLost("no live workers remain")
        n_tasks = len(payloads)
        results: list[Any] = [None] * n_tasks
        pending: deque[tuple[int, int]] = deque(
            (index, 0) for index in range(n_tasks)
        )
        completed = 0
        failure: Exception | None = None
        cond = threading.Condition()

        def dispatch(client: WorkerClient) -> None:
            nonlocal completed, failure
            while True:
                with cond:
                    while (not pending and completed < n_tasks
                           and failure is None):
                        cond.wait()
                    if failure is not None or completed == n_tasks:
                        return
                    index, attempts = pending.popleft()
                try:
                    value = client.submit(index, payloads[index])
                except WorkerLost as exc:
                    requeued = False
                    with cond:
                        self._retire(client)
                        if attempts >= self.max_reassignments:
                            if failure is None:
                                failure = WorkerLost(
                                    f"task {index} lost {attempts + 1}"
                                    f" workers (last: {exc})"
                                )
                        elif not self._clients:
                            if failure is None:
                                failure = WorkerLost(
                                    f"all workers lost (last: {exc})"
                                )
                        else:
                            pending.append((index, attempts + 1))
                            requeued = True
                        cond.notify_all()
                    # Observer runs outside the lock: a slow callback
                    # must not stall the surviving dispatch threads.
                    if requeued and self.on_reassign is not None:
                        self.on_reassign(index, client.name)
                    return
                except Exception as exc:
                    with cond:
                        # A TaskFailed recorded by another thread wins:
                        # it names the deterministic in-task bug, which a
                        # concurrent transport loss must not mask.
                        if failure is None or not isinstance(
                            failure, TaskFailed
                        ):
                            failure = exc
                        cond.notify_all()
                    return
                with cond:
                    results[index] = value
                    completed += 1
                    cond.notify_all()

        threads = [
            threading.Thread(target=dispatch, args=(client,), daemon=True)
            for client in list(self._clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failure is not None:
            raise failure
        return results

    def _retire(self, client: WorkerClient) -> None:
        if client in self._clients:
            self._clients.remove(client)
            self._retired.append(client)
        client.close()

    def close(self, shutdown: bool = False) -> None:
        """Close every live transport (optionally stopping the workers).

        A clean close is not a failure: the closed clients do *not* join
        :attr:`lost_workers`, which only ever names transport casualties.
        """
        for client in self._clients:
            client.close(shutdown=shutdown)
        self._clients = []

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LocalWorkerPool:
    """``N`` subprocess workers on localhost — the reference deployment.

    Spawns ``python -m repro worker --listen 127.0.0.1:0`` subprocesses,
    parses each worker's announcement line for its OS-assigned port, and
    connects a :class:`SocketTransport` to each — so ``--distributed N``
    exercises exactly the protocol a real multi-machine deployment uses,
    TCP and all. Use as a context manager; exit shuts the workers down.
    """

    #: Seconds a spawned worker gets to announce its port before the
    #: pool declares it wedged (covers slow imports on loaded hosts).
    STARTUP_TIMEOUT_S = 60.0

    def __init__(self, n_workers: int,
                 patience_s: float = DEFAULT_PATIENCE_S,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        if n_workers < 1:
            raise VerificationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.processes: list[subprocess.Popen] = []
        self._stderr_files: list[Any] = []
        clients: list[WorkerClient] = []
        try:
            for _ in range(n_workers):
                # stderr goes to an unbounded temp file, not a pipe: a
                # chatty worker must never block on a full pipe buffer
                # mid-task (which would read as a heartbeat timeout),
                # and the file stays readable for crash diagnostics.
                stderr_file = tempfile.TemporaryFile(mode="w+")
                process = subprocess.Popen(
                    [sys.executable, "-m", "repro", "worker",
                     "--listen", "127.0.0.1:0",
                     "--heartbeat", str(heartbeat_s)],
                    stdout=subprocess.PIPE,
                    stderr=stderr_file,
                    text=True,
                    env=self._worker_env(),
                )
                self.processes.append(process)
                self._stderr_files.append(stderr_file)
            for process, stderr_file in zip(self.processes,
                                            self._stderr_files):
                clients.append(SocketTransport(
                    "127.0.0.1", self._read_port(process, stderr_file),
                    patience_s=patience_s,
                ))
        except BaseException:
            for client in clients:
                client.close()
            self._terminate()
            raise
        self.coordinator = Coordinator(clients)

    @staticmethod
    def _worker_env() -> dict[str, str]:
        """Subprocess environment with this ``repro`` on the path."""
        import repro

        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)
        ))
        env = os.environ.copy()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        return env

    @classmethod
    def _read_port(cls, process: subprocess.Popen,
                   stderr_file: Any) -> int:
        """Parse ``listening on HOST:PORT`` from a worker's stdout.

        Bounded by :attr:`STARTUP_TIMEOUT_S` (a worker that wedges
        before announcing must fail the run, not hang it) via a reader
        thread — portable to platforms where ``select`` cannot wait on
        pipes — and quotes the worker's stderr on failure so a crashed
        subprocess is diagnosable.
        """
        stdout = process.stdout
        assert stdout is not None
        box: list[str] = []

        def read() -> None:
            box.append(stdout.readline())

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(cls.STARTUP_TIMEOUT_S)
        line = box[0] if box else ""
        if "listening on" not in line:
            diagnosis = f"said {line!r}" if box else (
                f"no announcement within {cls.STARTUP_TIMEOUT_S}s"
            )
            try:
                # A crashing worker EOFs stdout a beat before it exits
                # and flushes stderr; give it that beat.
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass
            if process.poll() is not None:
                stderr_file.seek(0)
                stderr_tail = stderr_file.read()[-2000:].strip()
                if stderr_tail:
                    diagnosis += f"; stderr: {stderr_tail}"
            raise WorkerLost(
                f"worker subprocess {process.pid} failed to start"
                f" ({diagnosis})"
            )
        return int(line.rsplit(":", 1)[1])

    def _terminate(self) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            if process.stdout is not None:
                process.stdout.close()
        for stderr_file in self._stderr_files:
            try:
                stderr_file.close()
            except OSError:
                pass
        self._stderr_files = []

    def __enter__(self) -> Coordinator:
        return self.coordinator

    def __exit__(self, *exc_info: object) -> None:
        self.coordinator.close(shutdown=True)
        self._terminate()


def connect_workers(endpoints: Iterable[str],
                    patience_s: float = DEFAULT_PATIENCE_S) -> Coordinator:
    """Coordinator over ``host:port`` endpoints (the ``--workers`` flag).

    Raises:
        VerificationError: malformed endpoint.
        WorkerLost: an endpoint refused the connection or handshake.
    """
    clients: list[WorkerClient] = []
    try:
        for endpoint in endpoints:
            host, port = parse_endpoint(endpoint)
            clients.append(SocketTransport(host, port,
                                           patience_s=patience_s))
    except BaseException:
        for client in clients:
            client.close()
        raise
    return Coordinator(clients)


# ---------------------------------------------------------------------------
# drivers (mirror repro.verify.parallel's, one shard per worker)
# ---------------------------------------------------------------------------


def _map_expand(coordinator: Coordinator, config: CheckerConfig):
    """``bfs_closure`` adapter: one batched exchange round per level."""
    def map_expand(codec, chunks, sequential):
        return coordinator.map([
            ExpandTask(config=config, codec=codec, packed=tuple(chunk),
                       sequential=sequential)
            for chunk in chunks
        ])

    return map_expand


def prove_work_conserving_distributed(
    policy, scope: StateScope, coordinator: Coordinator,
    choice_mode: str = "all", max_orders: int = DEFAULT_MAX_ORDERS,
    symmetric: bool = False,
    symmetry: SymmetryGroup | None = None,
    topology: NumaTopology | None = None,
    on_level: Callable[[int, int, int], None] | None = None,
) -> WorkConservationCertificate:
    """The full §4 pipeline with one shard per remote worker.

    Identical verdicts, counterexamples, and state counts to
    :func:`~repro.verify.parallel.prove_work_conserving_parallel` at
    ``jobs = n_workers`` and to the serial path — same specs, same BFS
    striping, same reducers; only the transport differs.
    """
    n_shards = coordinator.n_workers
    if n_shards < 1:
        raise WorkerLost("no live workers to dispatch shards to")
    group = resolve_symmetry(symmetric, symmetry)
    # Built before any dispatch so invalid parameter combinations (e.g.
    # an unsound symmetry/choice_mode pairing) fail with the same clean
    # one-line error the serial path gives, not a worker traceback.
    checker = ModelChecker(policy, choice_mode=choice_mode,
                           max_orders=max_orders, symmetric=symmetric,
                           symmetry=symmetry, topology=topology)
    specs = make_shard_specs(policy, scope, n_shards, choice_mode,
                             max_orders, symmetric, symmetry=symmetry,
                             topology=topology)
    sweep_shards: list[SweepShardResult] = coordinator.map(
        [SweepTask(spec=spec) for spec in specs]
    )
    live_shards: list[LivenessShardResult] = coordinator.map(
        [LivenessTask(spec=spec) for spec in specs]
    )

    config = CheckerConfig(policy=policy, choice_mode=choice_mode,
                           max_orders=max_orders, symmetric=symmetric,
                           symmetry=symmetry, topology=topology)
    with timed_check() as timer:
        initial = group.iter_representatives(scope)
        edges, truncated = bfs_closure(
            _map_expand(coordinator, config), n_shards, initial, symmetric,
            sequential=False, symmetry=symmetry, on_level=on_level,
        )
        analysis = checker.analyze_graph(scope, edges, truncated)
    analysis.elapsed_s = timer.elapsed

    return assemble_certificate(policy, sweep_shards, live_shards, analysis,
                                symmetric=symmetric, symmetry=symmetry)


def analyze_distributed(policy, scope: StateScope,
                        coordinator: Coordinator, choice_mode: str = "all",
                        max_orders: int = DEFAULT_MAX_ORDERS,
                        symmetric: bool = False, sequential: bool = False,
                        symmetry: SymmetryGroup | None = None,
                        topology: NumaTopology | None = None,
                        hierarchy: HierarchySpec | None = None,
                        on_level: Callable[[int, int, int], None] | None = None,
                        ) -> WorkConservationAnalysis:
    """Distributed counterpart of :func:`~repro.verify.parallel.
    analyze_parallel`: workers expand, the coordinator runs the cheap
    deterministic graph algorithms once. A
    :class:`~repro.verify.hierarchical.HierarchySpec` switches workers
    and coordinator alike to the hierarchical round checker."""
    n_shards = coordinator.n_workers
    if n_shards < 1:
        raise WorkerLost("no live workers to dispatch shards to")
    group = resolve_symmetry(symmetric, symmetry)
    checker = build_checker(policy, choice_mode=choice_mode,
                            max_orders=max_orders, symmetric=symmetric,
                            symmetry=symmetry, topology=topology,
                            hierarchy=hierarchy)
    config = CheckerConfig(policy=policy, choice_mode=choice_mode,
                           max_orders=max_orders, symmetric=symmetric,
                           symmetry=symmetry, topology=topology,
                           hierarchy=hierarchy)
    with timed_check() as timer:
        initial = group.iter_representatives(scope)
        edges, truncated = bfs_closure(
            _map_expand(coordinator, config), n_shards, initial, symmetric,
            sequential=sequential, symmetry=symmetry, on_level=on_level,
        )
        analysis = checker.analyze_graph(scope, edges, truncated,
                                         sequential=sequential)
    analysis.elapsed_s = timer.elapsed
    return analysis


def run_campaign_distributed(policy_factory,
                             config: CampaignConfig | None = None,
                             coordinator: Coordinator | None = None,
                             ) -> CampaignReport:
    """Fan a randomised campaign across remote workers.

    Task slices come from the shared
    :func:`~repro.verify.parallel.make_campaign_tasks`, so the merged
    report is identical to the pool engine's at ``jobs = n_workers``
    (coverage is a function of ``(seed, worker count)``, not of engine
    or transport).
    """
    config = config or CampaignConfig()
    if coordinator is None or coordinator.n_workers < 1:
        raise WorkerLost("no live workers to dispatch campaign slices to")
    tasks = make_campaign_tasks(policy_factory, config,
                                coordinator.n_workers)
    reports: list[CampaignReport] = coordinator.map([
        CampaignTask(replicator=replicator, config=slice_config)
        for replicator, slice_config in tasks
    ])
    return merge_campaign_reports(reports)

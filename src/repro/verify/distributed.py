"""Distributed verification: coordinator/worker shard dispatch.

:mod:`repro.verify.parallel` made the §4 pipeline shard-parallel on one
host; this module lets the shards leave the machine. A
:class:`Coordinator` hands the same :class:`~repro.verify.parallel.
ShardSpec`/campaign-slice tasks to workers over a pluggable transport,
collects the picklable shard results, and folds them through the
*unchanged* merge reducers — so the distributed verdict is byte-identical
to the pool engine's, which is byte-identical to the serial path.

Architecture
------------

* **Transports** (:class:`WorkerClient` implementations) — where a task
  runs:

  - :class:`InProcessTransport` executes tasks in the coordinator
    process, round-tripping every message through the wire encoding
    (tests and a zero-setup fallback);
  - :class:`SocketTransport` speaks the length-prefixed frame protocol
    of :mod:`repro.verify.wire` over TCP to a ``python -m repro worker
    --listen HOST:PORT`` process anywhere on the network;
  - :class:`LocalWorkerPool` spawns ``N`` worker subprocesses on
    localhost (each listening on an OS-assigned port) and connects a
    :class:`SocketTransport` to each — the reference deployment behind
    ``--distributed N``, exercising the full network stack without
    needing a second machine.

* **Scheduling** — :meth:`Coordinator.map` fans a task list across all
  live workers (one dispatch thread per worker pulling from a shared
  queue) and returns results in task order. Workers send heartbeat
  frames while computing; a worker that disconnects, times out past the
  coordinator's patience, or dies mid-task is retired and its in-flight
  task is *reassigned* to the survivors — a lost worker degrades to
  re-dispatch instead of a hung proof. Reassignment is sound because
  every task is a pure function of its payload: re-running shard ``k``
  elsewhere yields the identical shard result.

* **BFS frontier exchange** (``mode="level-sync"``) — the model
  checker's closure exploration reuses
  :func:`~repro.verify.parallel.bfs_closure` with chunks shipped as
  :class:`~repro.verify.wire.ExpandTask` batches: one round trip per
  BFS level, with the coordinator deduplicating canonical states between
  levels, so exploration works over high-latency links (cost per level
  is one exchange, not one per state). Workers memoize one
  :class:`~repro.verify.model_checker.ModelChecker` per checker config,
  so their transition caches persist across every level of a proof.

* **Async hash-partitioned exploration** (``mode="async"``) — the
  barrier-free alternative: canonical packed states are partitioned by
  a seed-independent hash (:func:`~repro.verify.parallel.partition_of`),
  each worker drains its own partitions *transitively* (same-partition
  successors never cross the wire) and streams cross-partition
  successors back as pipelined ``forward`` frames while still
  computing; the :class:`AsyncPartitionExplorer` routes them on,
  detects quiescence with a central counting round (every route and
  completion passes through one lock, the degenerate — and therefore
  exact — form of a Mattern-style credit scheme), steals partitions
  onto idle or late-joining workers, and reseeds migrated partitions so
  no state is ever expanded twice. The successor map is a pure function
  of the state set, so the merged graph — and every verdict and
  certificate derived from it — is byte-identical to level-sync and to
  serial regardless of partition count, scheduling, steals, or worker
  deaths.

Determinism: shard count is fixed at dispatch time (one shard per worker
known at the start of the run), merge reducers are order-independent,
and reassignment re-runs pure tasks — so worker deaths, scheduling, and
network timing cannot change a verdict. The async mode keeps the same
guarantee by a different route: its exploration *order* is timing-
dependent, but the explored *set* (the reachable closure) and each
state's successor set are not.
"""

from __future__ import annotations

import itertools
import os
import socket
import subprocess
import sys
import tempfile
import threading
import traceback
from collections import Counter, deque
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import VerificationError
from repro.obs.trace import TRACER, spans_to_payload, trace_clock
from repro.topology.numa import NumaTopology
from repro.verify.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.verify.encoding import PackedState, StateCodec, decode_graph
from repro.verify.enumeration import StateScope
from repro.verify.hierarchical import HierarchySpec, build_checker
from repro.verify.model_checker import (
    ModelChecker,
    PackedGraph,
    TransitionGraph,
    WorkConservationAnalysis,
)
from repro.verify.symmetry import SymmetryGroup, resolve_symmetry
from repro.verify.obligations import timed_check
from repro.verify.parallel import (
    LivenessShardResult,
    SweepShardResult,
    assemble_certificate,
    bfs_closure,
    liveness_shard_worker,
    make_campaign_tasks,
    make_shard_specs,
    merge_campaign_reports,
    partition_of,
    sweep_shard_worker,
)
from repro.verify.transition import DEFAULT_MAX_ORDERS
from repro.verify.wire import (
    ERROR,
    FORMAT_JSON,
    FORWARD,
    HEARTBEAT,
    HELLO,
    PING,
    PONG,
    RESULT,
    SHUTDOWN,
    TASK,
    CampaignTask,
    CheckerConfig,
    ConnectionClosed,
    ExpandTask,
    ForwardBatch,
    LivenessTask,
    PartitionControlTask,
    PartitionExpandTask,
    PartitionExpandResult,
    SweepTask,
    TracedResult,
    WireMessage,
    WireProtocolError,
    decode_message,
    encode_message,
    hello_payload,
    recv_message,
    send_message,
)
from repro.verify.work_conservation import WorkConservationCertificate

#: Default seconds between worker heartbeat frames during a task.
DEFAULT_HEARTBEAT_S = 1.0

#: Default seconds of frame silence before a worker is presumed dead.
DEFAULT_PATIENCE_S = 30.0

#: Default cap on how many times one task may be reassigned.
DEFAULT_MAX_REASSIGNMENTS = 3

#: Exploration modes the distributed drivers accept.
EXPLORATION_MODES = ("level-sync", "async")

#: Default hash partitions per initial worker in async mode: enough
#: headroom that idle workers and late joiners can be handed whole
#: partitions (the cheap migration unit) without re-hashing any state.
DEFAULT_PARTITIONS_PER_WORKER = 4

#: Run-id source for async explorations (unique per coordinator process;
#: verdicts never depend on it — it only namespaces worker-side state).
_RUN_IDS = itertools.count()


class WorkerLost(VerificationError):
    """Transport-level worker failure; the coordinator reassigns."""


class TaskFailed(VerificationError):
    """A task raised inside a worker; deterministic, so never reassigned."""


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` with a validated port range.

    The single parser behind ``--listen``, ``--workers`` and
    :func:`connect_workers`, so every surface rejects a malformed
    endpoint with the same one-line error instead of a downstream
    ``bind()``/``connect()`` traceback.

    Raises:
        VerificationError: not ``HOST:PORT``, or port outside 0..65535.
    """
    host, _, port_text = text.strip().rpartition(":")
    if not host or not port_text.isdigit():
        raise VerificationError(
            f"endpoint {text!r} is not HOST:PORT"
        )
    port = int(port_text)
    if port > 65535:
        raise VerificationError(
            f"endpoint {text!r}: port must be 0..65535"
        )
    return host, port


def _enable_keepalive(sock: socket.socket) -> None:
    """Arm TCP keepalive so a half-open peer cannot wedge a blocking read.

    A coordinator host that hard-crashes (no FIN) would otherwise leave
    the single-connection worker blocked in ``recv`` forever, deaf to
    every future coordinator. With these (platform-gated) knobs the OS
    declares the peer dead after ~2 minutes of silence and the read
    fails over to the accept loop.
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        for name, value in (("TCP_KEEPIDLE", 60), ("TCP_KEEPINTVL", 10),
                            ("TCP_KEEPCNT", 6)):
            if hasattr(socket, name):
                sock.setsockopt(socket.IPPROTO_TCP,
                                getattr(socket, name), value)
    except OSError:
        pass  # keepalive is an optimisation, never a requirement


def _ingest_traced(value: Any, worker: str) -> Any:
    """Unwrap a :class:`TracedResult`, merging its spans.

    The single point worker results re-enter the coordinator: spans
    captured remotely land on the local timeline (clock-offset rebased,
    attributed to ``worker``) and callers only ever see the inner
    result. Plain results pass through untouched, so the reducers are
    oblivious to tracing either way.
    """
    if isinstance(value, TracedResult):
        TRACER.ingest(value.spans, clock=value.clock, worker=worker,
                      pid=value.pid)
        return value.value
    return value


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class WorkerRuntime:
    """Executes wire task payloads; the single worker-side entry point.

    Keeps one memoized :class:`ModelChecker` per distinct
    :class:`CheckerConfig` so successive :class:`ExpandTask` batches of
    the same proof hit warm transition caches — the worker-side half of
    the "within each shard" memoization the pool engine gets from its
    process initializer.
    """

    def __init__(self) -> None:
        self._checkers: dict[bytes, ModelChecker] = {}
        # Async-mode visited sets, keyed (run_id, partition): the states
        # this worker has already expanded (or been seeded with) for a
        # partition it owns. Seeding REPLACES an entry wholesale — on
        # migration the coordinator knows exactly which states already
        # have merged edges, and stale local history must not survive.
        self._partitions: dict[tuple[str, int], set[PackedState]] = {}

    def _checker_for(self, config: CheckerConfig) -> ModelChecker:
        key = config.cache_key()
        checker = self._checkers.get(key)
        if checker is None:
            checker = build_checker(
                config.policy,
                choice_mode=config.choice_mode,
                max_orders=config.max_orders,
                symmetric=config.symmetric,
                symmetry=config.symmetry,
                topology=config.topology,
                hierarchy=config.hierarchy,
            )
            self._checkers[key] = checker
        return checker

    def execute(self, task: Any,
                emit: Callable[[ForwardBatch], None] | None = None) -> Any:
        """Run one task payload and return its (picklable) result.

        A ``trace=True`` task asks this worker to capture spans while
        executing and return them wrapped in
        :class:`~repro.verify.wire.TracedResult` — but only when this
        process's tracer is *off*, i.e. we really are a remote worker.
        In-process transports run inside the coordinator, where the
        tracer is already recording straight onto the merged timeline
        and wrapping would double-count.

        Args:
            task: a :data:`~repro.verify.wire.TASK_TYPES` payload.
            emit: mid-task frame sink (transports with a live back
                channel stream :class:`ForwardBatch` frames through it;
                without one, forwards ride home in the task result).

        Raises:
            WireProtocolError: payload is not a known task type.
        """
        if getattr(task, "trace", False) and not TRACER.enabled:
            TRACER.enable(worker=f"worker-pid-{os.getpid()}")
            try:
                value = self._execute(task, emit)
            finally:
                spans = TRACER.drain()
                TRACER.disable()
            return TracedResult(value=value,
                                spans=spans_to_payload(spans),
                                clock=trace_clock(), pid=os.getpid())
        return self._execute(task, emit)

    def _execute(self, task: Any,
                 emit: Callable[[ForwardBatch], None] | None) -> Any:
        with TRACER.span("worker." + type(task).__name__, "worker"):
            return self._dispatch_task(task, emit)

    def _dispatch_task(self, task: Any,
                       emit: Callable[[ForwardBatch], None] | None,
                       ) -> Any:
        if isinstance(task, SweepTask):
            return sweep_shard_worker(task.spec)
        if isinstance(task, LivenessTask):
            return liveness_shard_worker(task.spec)
        if isinstance(task, ExpandTask):
            return self._expand(task)
        if isinstance(task, PartitionExpandTask):
            return self._expand_partition(task, emit)
        if isinstance(task, PartitionControlTask):
            return self._control(task)
        if isinstance(task, CampaignTask):
            return run_campaign(task.replicator, task.config)
        raise WireProtocolError(
            f"unknown task payload {type(task).__name__!r}"
        )

    def _expand(self, task: ExpandTask):
        checker = self._checker_for(task.config)
        if task.codec is not None:
            # Wire v3: packed frontier chunk in, packed graph out.
            return checker.expand_packed(task.packed, task.codec,
                                         sequential=task.sequential)
        edges: TransitionGraph = {}
        truncated = False
        for state in task.states:
            succ, trunc = checker.successors(state,
                                             sequential=task.sequential)
            truncated = truncated or trunc
            edges[state] = succ
        return edges, truncated

    def _expand_partition(
        self, task: PartitionExpandTask,
        emit: Callable[[ForwardBatch], None] | None,
    ) -> PartitionExpandResult:
        """Drain one batch transitively inside its hash partition.

        Same-partition successors feed the next local chunk without
        touching the wire; cross-partition successors are streamed out
        as :class:`ForwardBatch` frames *between* chunks, so the
        coordinator routes them (and other workers expand them) while
        this worker is still computing. The per-partition visited set
        persists across tasks on the same connection, so later batches
        of the same partition never re-expand a state.
        """
        checker = self._checker_for(task.config)
        codec = task.codec
        visited = self._partitions.setdefault(
            (task.run_id, task.partition), set()
        )
        # A batch state may already be visited: the coordinator routes a
        # state the moment another partition forwards it, which can race
        # with this worker having discovered it locally.
        pending = {state for state in task.batch if state not in visited}
        edges: PackedGraph = {}
        truncated = False
        forwards: dict[int, set[PackedState]] = {}
        forwarded: set[PackedState] = set()
        # blake2b routing runs once per *distinct* successor per task —
        # the flat successor stream is deduped per chunk and the
        # computed target memoized across chunks — instead of once per
        # edge occurrence.
        target_of: dict[PackedState, int] = {}
        while pending:
            chunk = tuple(sorted(pending))
            visited.update(chunk)
            chunk_edges, chunk_truncated, flat = checker.expand_level(
                chunk, codec, sequential=task.sequential
            )
            truncated = truncated or chunk_truncated
            edges.update(chunk_edges)
            pending = set()
            fresh: dict[int, set[PackedState]] = {}
            values = flat if isinstance(flat, list) else flat.tolist()
            for successor in set(values):
                target = target_of.get(successor)
                if target is None:
                    target = partition_of(successor, codec,
                                          task.n_partitions)
                    target_of[successor] = target
                if target == task.partition:
                    if successor not in visited:
                        pending.add(successor)
                elif successor not in forwarded:
                    forwarded.add(successor)
                    fresh.setdefault(target, set()).add(successor)
            if not fresh:
                continue
            if emit is not None:
                emit(ForwardBatch(
                    run_id=task.run_id, partition=task.partition,
                    targets={target: tuple(sorted(states))
                             for target, states in fresh.items()},
                ))
            else:
                for target, states in fresh.items():
                    forwards.setdefault(target, set()).update(states)
        return PartitionExpandResult(
            partition=task.partition,
            edges=edges,
            truncated=truncated,
            forwards={target: tuple(sorted(states))
                      for target, states in forwards.items()},
        )

    def _control(self, task: PartitionControlTask) -> bool:
        """Apply a partition lifecycle op; returns an ack."""
        if task.op == "seed":
            self._partitions[(task.run_id, task.partition)] = set(
                task.visited
            )
            return True
        if task.op == "drop-run":
            for key in [key for key in self._partitions
                        if key[0] == task.run_id]:
                del self._partitions[key]
            return True
        raise WireProtocolError(
            f"unknown partition control op {task.op!r}"
        )


class WorkerServer:
    """A TCP worker: accepts coordinators, executes tasks, heartbeats.

    One coordinator connection is served at a time (shard dispatch gives
    every worker exactly one coordinator); after a coordinator
    disconnects the server keeps accepting, so a long-lived ``python -m
    repro worker --listen`` terminal serves any number of consecutive
    proof runs. A ``shutdown`` frame stops the server for good.

    Attributes:
        host: bind address.
        port: bind port (0 lets the OS choose; see :attr:`bound_port`).
        heartbeat_s: seconds between heartbeat frames during a task.
    """

    #: Floor on the heartbeat interval: below this a task would spin the
    #: serving thread and flood the socket instead of computing.
    MIN_HEARTBEAT_S = 0.05

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        self.host = host
        self.port = port
        self.heartbeat_s = max(heartbeat_s, self.MIN_HEARTBEAT_S)
        self.bound_port: int | None = None
        self._shutdown = threading.Event()
        self._server: socket.socket | None = None

    def shutdown(self) -> None:
        """Ask :meth:`serve_forever` to stop after the current connection."""
        self._shutdown.set()

    def serve_forever(
        self, announce: Callable[[str], None] | None = None,
        ready: threading.Event | None = None,
    ) -> None:
        """Bind, announce ``listening on HOST:PORT``, and serve.

        Args:
            announce: sink for the one announcement line (defaults to
                printing on stdout, which ``LocalWorkerPool`` parses to
                learn OS-assigned ports).
            ready: optional event set once the socket is listening
                (threaded tests synchronise on it).
        """
        with socket.create_server(
            (self.host, self.port), reuse_port=False
        ) as server:
            self._server = server
            self.bound_port = server.getsockname()[1]
            line = f"repro-worker listening on {self.host}:{self.bound_port}"
            if announce is None:
                print(line, flush=True)
            else:
                announce(line)
            if ready is not None:
                ready.set()
            server.settimeout(0.2)
            while not self._shutdown.is_set():
                try:
                    conn, _addr = server.accept()
                except socket.timeout:
                    continue
                with conn:
                    conn.settimeout(None)
                    _enable_keepalive(conn)
                    self._serve_connection(conn)
        self._server = None

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve one coordinator until it hangs up or shuts us down.

        Each connection gets a private :class:`WorkerRuntime`: checker
        memos only pay off within one proof run (one connection), and a
        task thread orphaned by a vanished coordinator must not share
        mutable state with the next coordinator's tasks. (The orphan
        itself runs to completion of its one task and exits — pure
        Python compute cannot be cancelled preemptively.)
        """
        runtime = WorkerRuntime()
        # One writer lock per connection: during an async partition task
        # the task thread streams FORWARD frames while the serving
        # thread heartbeats — interleaved frame bytes would corrupt the
        # stream, so every send on this socket takes the lock.
        send_lock = threading.Lock()
        while True:
            try:
                message = recv_message(conn)
            except (ConnectionClosed, OSError):
                return
            except WireProtocolError as exc:
                # Tell the peer why before hanging up — this is how a
                # coordinator from another release learns it is a
                # version mismatch rather than a dead worker.
                try:
                    send_message(
                        conn,
                        WireMessage(kind=ERROR,
                                    payload={"traceback": str(exc)}),
                        fmt=FORMAT_JSON,
                    )
                except OSError:
                    pass
                return
            try:
                if message.kind == HELLO:
                    send_message(
                        conn, WireMessage(kind=HELLO,
                                          payload=hello_payload()),
                        fmt=FORMAT_JSON,
                    )
                elif message.kind == PING:
                    send_message(conn, WireMessage(kind=PONG),
                                 fmt=FORMAT_JSON)
                elif message.kind == SHUTDOWN:
                    self._shutdown.set()
                    return
                elif message.kind == TASK:
                    self._serve_task(conn, message, runtime, send_lock)
                else:
                    return  # kinds a worker never receives
            except (ConnectionClosed, OSError):
                return

    def _serve_task(self, conn: socket.socket, message: WireMessage,
                    runtime: WorkerRuntime,
                    send_lock: threading.Lock) -> None:
        """Execute one task, heartbeating until the result is ready.

        Async partition tasks additionally stream :data:`FORWARD`
        frames through ``emit`` while running; the shared ``send_lock``
        keeps them whole against concurrent heartbeats.
        """
        box: list[tuple[str, Any]] = []

        def emit(frame: ForwardBatch) -> None:
            with send_lock:
                send_message(conn, WireMessage(kind=FORWARD,
                                               task_id=message.task_id,
                                               payload=frame))

        def run() -> None:
            try:
                box.append((RESULT,
                            runtime.execute(message.payload, emit=emit)))
            except BaseException:
                box.append((ERROR, traceback.format_exc()))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        while True:
            thread.join(self.heartbeat_s)
            if not thread.is_alive():
                break
            with send_lock:
                send_message(
                    conn,
                    WireMessage(kind=HEARTBEAT, task_id=message.task_id),
                    fmt=FORMAT_JSON,
                )
        kind, value = box[0]
        if kind == RESULT:
            with send_lock:
                send_message(conn, WireMessage(kind=RESULT,
                                               task_id=message.task_id,
                                               payload=value))
        else:
            with send_lock:
                send_message(
                    conn,
                    WireMessage(kind=ERROR, task_id=message.task_id,
                                payload={"traceback": value}),
                    fmt=FORMAT_JSON,
                )


# ---------------------------------------------------------------------------
# coordinator side: transports
# ---------------------------------------------------------------------------


class WorkerClient:
    """One dispatchable worker, however its tasks actually run.

    Subclasses implement :meth:`submit` (run one task payload to
    completion, raising :class:`WorkerLost` on transport death and
    :class:`TaskFailed` on an in-task exception) and :meth:`close`.
    A client is used by at most one coordinator thread at a time.

    Attributes:
        on_forward: mid-task frame sink. When set, transports deliver
            each :class:`~repro.verify.wire.ForwardBatch` the worker
            streams *during* :meth:`submit` to this callable (from the
            submitting thread); the async explorer points it at its
            router. When ``None``, frames are dropped (level-sync tasks
            never emit any).
    """

    name = "worker"
    on_forward: Callable[[ForwardBatch], None] | None = None

    def submit(self, task_id: int, payload: Any) -> Any:
        raise NotImplementedError

    def close(self, shutdown: bool = False) -> None:
        """Release the transport; ``shutdown`` also stops the worker."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class InProcessTransport(WorkerClient):
    """Executes tasks in the coordinator process, through the wire.

    Every task and result round-trips through
    :func:`~repro.verify.wire.encode_message` /
    :func:`~repro.verify.wire.decode_message`, so anything that would not
    survive a real network hop fails here too — which is what makes the
    in-process equivalence tests meaningful.
    """

    def __init__(self, name: str = "in-process") -> None:
        self.name = name
        self._runtime = WorkerRuntime()

    def submit(self, task_id: int, payload: Any) -> Any:
        request = decode_message(encode_message(
            WireMessage(kind=TASK, task_id=task_id, payload=payload)
        ))

        def emit(frame: ForwardBatch) -> None:
            if self.on_forward is None:
                return
            hop = decode_message(encode_message(
                WireMessage(kind=FORWARD, task_id=task_id, payload=frame)
            ))
            self.on_forward(hop.payload)

        try:
            result = self._runtime.execute(request.payload, emit=emit)
        except Exception as exc:
            raise TaskFailed(
                f"task {task_id} failed on {self.name}: {exc}"
            ) from exc
        reply = decode_message(encode_message(
            WireMessage(kind=RESULT, task_id=task_id, payload=result)
        ))
        return reply.payload


class SocketTransport(WorkerClient):
    """A persistent TCP connection to one :class:`WorkerServer`.

    Connects and handshakes eagerly in the constructor (version mismatch
    fails the run before any shard is dispatched, not mid-proof). While a
    task runs the worker heartbeats every ``heartbeat_s``; a silence
    longer than ``patience_s`` — no heartbeat, no result — means the
    worker is dead or wedged, and :meth:`submit` raises
    :class:`WorkerLost` so the coordinator can reassign.
    """

    def __init__(self, host: str, port: int,
                 patience_s: float = DEFAULT_PATIENCE_S,
                 connect_timeout_s: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.patience_s = patience_s
        self.name = f"{host}:{port}"
        self._sock: socket.socket | None = None
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout_s
            )
            self._sock.settimeout(patience_s)
            send_message(self._sock,
                         WireMessage(kind=HELLO, payload=hello_payload()),
                         fmt=FORMAT_JSON)
            reply = recv_message(self._sock)
            if reply.kind == ERROR:
                detail = (reply.payload or {}).get("traceback", "")
                raise WireProtocolError(
                    f"worker {self.name} rejected the handshake: {detail}"
                )
            if reply.kind != HELLO:
                raise WireProtocolError(
                    f"worker {self.name} answered hello with {reply.kind!r}"
                )
        except (OSError, WireProtocolError) as exc:
            self.close()
            raise WorkerLost(
                f"cannot establish worker {self.name}: {exc}"
            ) from exc

    def submit(self, task_id: int, payload: Any) -> Any:
        assert self._sock is not None, "transport is closed"
        try:
            send_message(self._sock, WireMessage(kind=TASK, task_id=task_id,
                                                 payload=payload))
            while True:
                message = recv_message(self._sock)
                if message.kind == HEARTBEAT:
                    continue  # still alive; the recv timeout re-arms
                if message.kind == FORWARD:
                    # Mid-task stream: route and keep waiting (a forward
                    # frame proves liveness just like a heartbeat).
                    if self.on_forward is not None:
                        self.on_forward(message.payload)
                    continue
                if message.kind == RESULT:
                    return message.payload
                if message.kind == ERROR:
                    detail = (message.payload or {}).get("traceback", "")
                    raise TaskFailed(
                        f"task {task_id} failed on worker {self.name}:\n"
                        f"{detail}"
                    )
                raise WireProtocolError(
                    f"unexpected {message.kind!r} while awaiting task"
                    f" {task_id}"
                )
        except TaskFailed:
            raise
        except socket.timeout as exc:
            raise WorkerLost(
                f"worker {self.name} silent for {self.patience_s}s"
            ) from exc
        except (OSError, WireProtocolError) as exc:
            raise WorkerLost(f"worker {self.name} lost: {exc}") from exc

    def ping(self) -> bool:
        """Cheap liveness probe outside any task."""
        if self._sock is None:
            return False
        try:
            send_message(self._sock, WireMessage(kind=PING),
                         fmt=FORMAT_JSON)
            return recv_message(self._sock).kind == PONG
        except (OSError, WireProtocolError):
            return False

    def close(self, shutdown: bool = False) -> None:
        if self._sock is None:
            return
        try:
            if shutdown:
                send_message(self._sock, WireMessage(kind=SHUTDOWN),
                             fmt=FORMAT_JSON)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------


class Coordinator:
    """Fans task lists across workers; reassigns on worker loss.

    Attributes:
        max_reassignments: how many times one task may be re-dispatched
            after worker deaths before the run is declared failed.
        on_reassign: optional observer called as ``on_reassign(task_index,
            worker_name)`` whenever a lost worker's in-flight task is
            requeued for the survivors — the hook behind
            :class:`repro.api`'s ``ShardReassigned`` progress events.
            Called from a dispatch thread; it must not block and cannot
            influence scheduling.
    """

    def __init__(self, clients: Sequence[WorkerClient],
                 max_reassignments: int = DEFAULT_MAX_REASSIGNMENTS) -> None:
        if not clients:
            raise VerificationError("a coordinator needs at least one worker")
        self._clients: list[WorkerClient] = list(clients)
        self._retired: list[WorkerClient] = []
        self.max_reassignments = max_reassignments
        self.on_reassign: Callable[[int, str], None] | None = None
        self._membership_listeners: list[
            Callable[[WorkerClient], None]
        ] = []

    @property
    def n_workers(self) -> int:
        """Live workers — the shard count new dispatches will use."""
        return len(self._clients)

    @property
    def clients(self) -> tuple[WorkerClient, ...]:
        """Snapshot of the live workers."""
        return tuple(self._clients)

    @property
    def lost_workers(self) -> list[str]:
        """Names of workers retired after transport failures."""
        return [client.name for client in self._retired]

    def add_worker(self, client: WorkerClient) -> None:
        """Admit a worker mid-run (dynamic membership).

        Level-synchronous :meth:`map` calls snapshot their worker set at
        dispatch time, so a late joiner only helps from the *next* map
        onward; an in-progress async exploration subscribes through
        :meth:`add_membership_listener` and puts the newcomer to work
        immediately (it starts by stealing a partition).
        """
        self._clients.append(client)
        for listener in list(self._membership_listeners):
            listener(client)

    def retire(self, client: WorkerClient) -> None:
        """Retire a worker after a transport failure (idempotent)."""
        self._retire(client)

    def add_membership_listener(
        self, listener: Callable[[WorkerClient], None]
    ) -> None:
        """Register a callback fired with each :meth:`add_worker` client."""
        self._membership_listeners.append(listener)

    def remove_membership_listener(
        self, listener: Callable[[WorkerClient], None]
    ) -> None:
        if listener in self._membership_listeners:
            self._membership_listeners.remove(listener)

    def map(self, payloads: Sequence[Any]) -> list[Any]:
        """Run every payload on some worker; results in payload order.

        One dispatch thread per live worker pulls tasks from a shared
        queue. A :class:`WorkerLost` retires that worker and requeues its
        task (up to :attr:`max_reassignments` times) for the survivors; a
        :class:`TaskFailed` aborts the whole map — the task is a pure
        function of its payload, so it would fail anywhere.

        Raises:
            WorkerLost: every worker died, or a task exhausted its
                reassignment budget.
            TaskFailed: a task raised inside a worker.
        """
        if not payloads:
            return []
        if not self._clients:
            raise WorkerLost("no live workers remain")
        n_tasks = len(payloads)
        results: list[Any] = [None] * n_tasks
        pending: deque[tuple[int, int]] = deque(
            (index, 0) for index in range(n_tasks)
        )
        completed = 0
        failure: Exception | None = None
        cond = threading.Condition()

        def dispatch(client: WorkerClient) -> None:
            nonlocal completed, failure
            while True:
                with cond:
                    while (not pending and completed < n_tasks
                           and failure is None):
                        cond.wait()
                    if failure is not None or completed == n_tasks:
                        return
                    index, attempts = pending.popleft()
                try:
                    with TRACER.span("coordinator.dispatch",
                                     "coordinator", task=index,
                                     worker=client.name,
                                     kind=type(payloads[index]).__name__):
                        value = _ingest_traced(
                            client.submit(index, payloads[index]),
                            client.name,
                        )
                except WorkerLost as exc:
                    requeued = False
                    with cond:
                        self._retire(client)
                        if attempts >= self.max_reassignments:
                            if failure is None:
                                failure = WorkerLost(
                                    f"task {index} lost {attempts + 1}"
                                    f" workers (last: {exc})"
                                )
                        elif not self._clients:
                            if failure is None:
                                failure = WorkerLost(
                                    f"all workers lost (last: {exc})"
                                )
                        else:
                            pending.append((index, attempts + 1))
                            requeued = True
                        cond.notify_all()
                    # Observer runs outside the lock: a slow callback
                    # must not stall the surviving dispatch threads.
                    if requeued and self.on_reassign is not None:
                        self.on_reassign(index, client.name)
                    return
                except Exception as exc:
                    with cond:
                        # A TaskFailed recorded by another thread wins:
                        # it names the deterministic in-task bug, which a
                        # concurrent transport loss must not mask.
                        if failure is None or not isinstance(
                            failure, TaskFailed
                        ):
                            failure = exc
                        cond.notify_all()
                    return
                with cond:
                    results[index] = value
                    completed += 1
                    cond.notify_all()

        threads = [
            threading.Thread(target=dispatch, args=(client,), daemon=True)
            for client in list(self._clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failure is not None:
            raise failure
        return results

    def _retire(self, client: WorkerClient) -> None:
        if client in self._clients:
            self._clients.remove(client)
            self._retired.append(client)
        client.close()

    def close(self, shutdown: bool = False) -> None:
        """Close every live transport (optionally stopping the workers).

        A clean close is not a failure: the closed clients do *not* join
        :attr:`lost_workers`, which only ever names transport casualties.
        """
        for client in self._clients:
            client.close(shutdown=shutdown)
        self._clients = []

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class LocalWorkerPool:
    """``N`` subprocess workers on localhost — the reference deployment.

    Spawns ``python -m repro worker --listen 127.0.0.1:0`` subprocesses,
    parses each worker's announcement line for its OS-assigned port, and
    connects a :class:`SocketTransport` to each — so ``--distributed N``
    exercises exactly the protocol a real multi-machine deployment uses,
    TCP and all. Use as a context manager; exit shuts the workers down.
    """

    #: Seconds a spawned worker gets to announce its port before the
    #: pool declares it wedged (covers slow imports on loaded hosts).
    STARTUP_TIMEOUT_S = 60.0

    def __init__(self, n_workers: int,
                 patience_s: float = DEFAULT_PATIENCE_S,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        if n_workers < 1:
            raise VerificationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.processes: list[subprocess.Popen] = []
        self._stderr_files: list[Any] = []
        clients: list[WorkerClient] = []
        try:
            for _ in range(n_workers):
                # stderr goes to an unbounded temp file, not a pipe: a
                # chatty worker must never block on a full pipe buffer
                # mid-task (which would read as a heartbeat timeout),
                # and the file stays readable for crash diagnostics.
                stderr_file = tempfile.TemporaryFile(mode="w+")
                process = subprocess.Popen(
                    [sys.executable, "-m", "repro", "worker",
                     "--listen", "127.0.0.1:0",
                     "--heartbeat", str(heartbeat_s)],
                    stdout=subprocess.PIPE,
                    stderr=stderr_file,
                    text=True,
                    env=self._worker_env(),
                )
                self.processes.append(process)
                self._stderr_files.append(stderr_file)
            for process, stderr_file in zip(self.processes,
                                            self._stderr_files):
                clients.append(SocketTransport(
                    "127.0.0.1", self._read_port(process, stderr_file),
                    patience_s=patience_s,
                ))
        except BaseException:
            for client in clients:
                client.close()
            self._terminate()
            raise
        self.coordinator = Coordinator(clients)

    @staticmethod
    def _worker_env() -> dict[str, str]:
        """Subprocess environment with this ``repro`` on the path."""
        import repro

        src_root = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)
        ))
        env = os.environ.copy()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        return env

    @classmethod
    def _read_port(cls, process: subprocess.Popen,
                   stderr_file: Any) -> int:
        """Parse ``listening on HOST:PORT`` from a worker's stdout.

        Bounded by :attr:`STARTUP_TIMEOUT_S` (a worker that wedges
        before announcing must fail the run, not hang it) via a reader
        thread — portable to platforms where ``select`` cannot wait on
        pipes — and quotes the worker's stderr on failure so a crashed
        subprocess is diagnosable.
        """
        stdout = process.stdout
        assert stdout is not None
        box: list[str] = []

        def read() -> None:
            box.append(stdout.readline())

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(cls.STARTUP_TIMEOUT_S)
        line = box[0] if box else ""
        if "listening on" not in line:
            diagnosis = f"said {line!r}" if box else (
                f"no announcement within {cls.STARTUP_TIMEOUT_S}s"
            )
            try:
                # A crashing worker EOFs stdout a beat before it exits
                # and flushes stderr; give it that beat.
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass
            if process.poll() is not None:
                stderr_file.seek(0)
                stderr_tail = stderr_file.read()[-2000:].strip()
                if stderr_tail:
                    diagnosis += f"; stderr: {stderr_tail}"
            raise WorkerLost(
                f"worker subprocess {process.pid} failed to start"
                f" ({diagnosis})"
            )
        return int(line.rsplit(":", 1)[1])

    def _terminate(self) -> None:
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            if process.stdout is not None:
                process.stdout.close()
        for stderr_file in self._stderr_files:
            try:
                stderr_file.close()
            except OSError:
                pass
        self._stderr_files = []

    def __enter__(self) -> Coordinator:
        return self.coordinator

    def __exit__(self, *exc_info: object) -> None:
        self.coordinator.close(shutdown=True)
        self._terminate()


def connect_workers(endpoints: Iterable[str],
                    patience_s: float = DEFAULT_PATIENCE_S) -> Coordinator:
    """Coordinator over ``host:port`` endpoints (the ``--workers`` flag).

    Raises:
        VerificationError: malformed endpoint.
        WorkerLost: an endpoint refused the connection or handshake.
    """
    clients: list[WorkerClient] = []
    try:
        for endpoint in endpoints:
            host, port = parse_endpoint(endpoint)
            clients.append(SocketTransport(host, port,
                                           patience_s=patience_s))
    except BaseException:
        for client in clients:
            client.close()
        raise
    return Coordinator(clients)


# ---------------------------------------------------------------------------
# async hash-partitioned exploration
# ---------------------------------------------------------------------------


class AsyncPartitionExplorer:
    """Barrier-free closure exploration over hash partitions.

    The reachable state space is split into ``n_partitions`` by
    :func:`~repro.verify.parallel.partition_of`; every partition has
    exactly one owning worker at any moment, and workers drain their
    partitions continuously — there is no BFS level and no barrier.
    All coordinator-side state lives behind one condition variable:

    * ``inbox[p]`` — routed-but-undispatched states of partition ``p``;
    * ``routed`` — every state ever placed in an inbox *or* already
      expanded (the global dedup set);
    * ``edges`` / ``expanded[p]`` — the merged packed graph and its
      per-partition key sets (the seed payload for migrations);
    * ``in_flight[p]`` — the batch currently on the wire for ``p``.

    **Termination** is a counting round in the Mattern style collapsed
    to its exact central case: every route (+) and every merged result
    (−) passes through the one lock, so "all inboxes empty and nothing
    in flight" *is* global quiescence, with no probe messages needed.

    **Work stealing / dynamic membership**: a worker with no pending
    partition of its own takes the fullest pending partition from an
    owner that still keeps ≥ 2 non-empty ones; a worker added through
    :meth:`Coordinator.add_worker` mid-run joins the same way. A stolen
    or reassigned partition is *re-seeded* — the heir's visited set is
    replaced with the partition's already-expanded keys — so migration
    never re-expands a state and never loses one.

    **Fault tolerance** mirrors :meth:`Coordinator.map`: a lost worker
    is retired, its in-flight batch re-queued, and its partitions
    spread over the survivors, budgeted per partition by
    ``max_reassignments``; a :class:`TaskFailed` aborts the run
    (deterministic — it would fail anywhere).
    """

    #: States per expand batch. Small enough to pipeline (forwards for
    #: an early batch route while later ones are still queued), large
    #: enough that framing never dominates.
    BATCH_CAP = 512

    def __init__(self, coordinator: Coordinator, config: CheckerConfig,
                 codec: StateCodec, n_partitions: int,
                 sequential: bool = False,
                 on_expand: Callable[[int], None] | None = None,
                 on_partition_split:
                     "Callable[[int, str, str, int], None] | None" = None,
                 ) -> None:
        if n_partitions < 1:
            raise VerificationError(
                f"n_partitions must be >= 1, got {n_partitions}"
            )
        self.coordinator = coordinator
        self.config = config
        self.codec = codec
        self.n_partitions = n_partitions
        self.sequential = sequential
        self.on_expand = on_expand
        self.on_partition_split = on_partition_split
        self.run_id = f"async-{os.getpid()}-{next(_RUN_IDS)}"
        self._cond = threading.Condition()
        self._inbox: dict[int, set[PackedState]] = {
            p: set() for p in range(n_partitions)
        }
        self._routed: set[PackedState] = set()
        self._edges: PackedGraph = {}
        self._expanded: dict[int, set[PackedState]] = {
            p: set() for p in range(n_partitions)
        }
        self._truncated = False
        self._assignment: dict[int, WorkerClient] = {}
        self._needs_seed: set[int] = set()
        self._in_flight: dict[int, tuple[WorkerClient,
                                         tuple[PackedState, ...]]] = {}
        self._attempts: dict[int, int] = {p: 0 for p in range(n_partitions)}
        self._live: list[WorkerClient] = []
        self._threads: list[threading.Thread] = []
        self._failure: Exception | None = None
        self._finished = False
        self._task_ids = itertools.count()
        self._expand_lock = threading.Lock()
        self._reported = 0

    # -- routing (callers hold self._cond) ------------------------------

    def _route(self, states: Iterable[PackedState]) -> None:
        """Place never-before-seen states in their partition inboxes."""
        for packed in states:
            if packed in self._routed:
                continue
            self._routed.add(packed)
            partition = partition_of(packed, self.codec, self.n_partitions)
            self._inbox[partition].add(packed)

    def _route_to(self, partition: int,
                  states: Iterable[PackedState]) -> None:
        """:meth:`_route` for states the sender already hashed.

        Forward frames and task results arrive grouped by target
        partition, computed worker-side with the same pure
        ``partition_of`` over the same codec and partition count —
        re-hashing each state here would be pure coordinator overhead,
        paid under the one condition lock.
        """
        inbox = self._inbox[partition]
        routed = self._routed
        for packed in states:
            if packed not in routed:
                routed.add(packed)
                inbox.add(packed)

    def _on_forward(self, frame: ForwardBatch) -> None:
        """Transport sink for mid-task forward frames."""
        if frame.run_id != self.run_id:
            return  # a stale frame from a previous run on this worker
        if TRACER.enabled:
            TRACER.instant(
                "async.forward", "async", partition=frame.partition,
                targets=len(frame.targets),
                states=sum(len(states)
                           for states in frame.targets.values()),
            )
        with self._cond:
            for target, states in frame.targets.items():
                self._route_to(target, states)
            self._cond.notify_all()

    def _quiescent(self) -> bool:
        return not self._in_flight and not any(self._inbox.values())

    # -- scheduling (callers hold self._cond) ---------------------------

    def _pick(self, client: WorkerClient) -> int | None:
        """The client's own next dispatchable partition, if any."""
        mine = [p for p, owner in self._assignment.items()
                if owner is client and self._inbox[p]
                and p not in self._in_flight]
        return min(mine) if mine else None

    def _steal(self, client: WorkerClient) -> tuple[int, str] | None:
        """Move one pending partition from a loaded owner to ``client``.

        Only owners that would keep at least one non-empty partition
        are victims (otherwise two idle workers would trade the last
        partition back and forth); among eligible partitions the
        fullest inbox moves, since it buys the thief the most runway.
        """
        candidates = [p for p, owner in self._assignment.items()
                      if owner is not client and self._inbox[p]
                      and p not in self._in_flight]
        if not candidates:
            return None
        loads = Counter(
            self._assignment[p] for p in range(self.n_partitions)
            if self._inbox[p] or p in self._in_flight
        )
        eligible = [p for p in candidates
                    if loads[self._assignment[p]] >= 2]
        if not eligible:
            return None
        partition = max(eligible, key=lambda p: (len(self._inbox[p]), -p))
        source = self._assignment[partition]
        self._assignment[partition] = client
        self._needs_seed.add(partition)
        return partition, source.name

    # -- dispatch threads ------------------------------------------------

    def _dispatch(self, client: WorkerClient) -> None:
        while True:
            split_event: tuple[int, str, str, int] | None = None
            seed_task: PartitionControlTask | None = None
            with self._cond:
                while True:
                    if self._failure is not None or self._finished:
                        return
                    partition = self._pick(client)
                    if partition is None:
                        stolen = self._steal(client)
                        if stolen is not None:
                            partition, source_name = stolen
                            split_event = (partition, source_name,
                                           client.name,
                                           len(self._inbox[partition]))
                    if partition is not None:
                        break
                    if self._quiescent():
                        self._finished = True
                        self._cond.notify_all()
                        return
                    self._cond.wait()
                batch = tuple(sorted(
                    self._inbox[partition]
                ))[:self.BATCH_CAP]
                self._inbox[partition].difference_update(batch)
                self._in_flight[partition] = (client, batch)
                if partition in self._needs_seed:
                    seed_task = PartitionControlTask(
                        run_id=self.run_id, op="seed", partition=partition,
                        visited=tuple(sorted(self._expanded[partition])),
                    )
            # Hooks fire outside the lock: a slow observer must not
            # stall routing or the other dispatch threads.
            if split_event is not None and self.on_partition_split:
                self.on_partition_split(*split_event)
            if split_event is not None and TRACER.enabled:
                TRACER.instant("async.steal", "async",
                               partition=split_event[0],
                               source=split_event[1],
                               thief=split_event[2],
                               pending=split_event[3])
            try:
                if seed_task is not None:
                    _ingest_traced(
                        client.submit(next(self._task_ids), seed_task),
                        client.name,
                    )
                    with self._cond:
                        self._needs_seed.discard(partition)
                with TRACER.span("async.expand", "async",
                                 partition=partition, batch=len(batch),
                                 worker=client.name) as span:
                    result = _ingest_traced(
                        client.submit(
                            next(self._task_ids),
                            PartitionExpandTask(
                                config=self.config, codec=self.codec,
                                run_id=self.run_id, partition=partition,
                                n_partitions=self.n_partitions,
                                batch=batch,
                                sequential=self.sequential,
                                trace=TRACER.enabled,
                            ),
                        ),
                        client.name,
                    )
                    span.set(edges=len(result.edges),
                             inbox=len(self._inbox[partition]))
            except WorkerLost as exc:
                self._handle_loss(client, partition, batch, exc)
                return
            except Exception as exc:
                with self._cond:
                    # A TaskFailed recorded by another thread wins: it
                    # names the deterministic in-task bug.
                    if self._failure is None or not isinstance(
                        self._failure, TaskFailed
                    ):
                        self._failure = exc
                    self._cond.notify_all()
                return
            self._merge(partition, result)

    def _merge(self, partition: int,
               result: PartitionExpandResult) -> None:
        with self._cond:
            self._in_flight.pop(partition, None)
            self._edges.update(result.edges)
            self._expanded[partition].update(result.edges.keys())
            self._truncated = self._truncated or result.truncated
            # Everything just expanded counts as routed (forwards from
            # other partitions must not re-queue it) and leaves the
            # inbox (a racing forward may have re-queued it already).
            self._routed.update(result.edges.keys())
            self._inbox[partition].difference_update(result.edges.keys())
            for target, states in result.forwards.items():
                self._route_to(target, states)
            self._attempts[partition] = 0
            count = len(self._edges)
            self._cond.notify_all()
        if self.on_expand is not None:
            # Serialise and monotonise progress reports: merges race,
            # and a cumulative counter must never appear to go back.
            with self._expand_lock:
                if count > self._reported:
                    self._reported = count
                    self.on_expand(count)

    def _handle_loss(self, client: WorkerClient, partition: int,
                     batch: tuple[PackedState, ...],
                     exc: WorkerLost) -> None:
        reassign_events: list[tuple[int, str]] = []
        with self._cond:
            self._in_flight.pop(partition, None)
            self._inbox[partition].update(batch)
            self._attempts[partition] += 1
            if client in self._live:
                self._live.remove(client)
            self.coordinator.retire(client)
            if self._attempts[partition] > self.coordinator.max_reassignments:
                if self._failure is None:
                    self._failure = WorkerLost(
                        f"partition {partition} lost"
                        f" {self._attempts[partition]} workers"
                        f" (last: {exc})"
                    )
            elif not self._live:
                if self._failure is None:
                    self._failure = WorkerLost(
                        f"all workers lost (last: {exc})"
                    )
            else:
                orphans = sorted(
                    p for p, owner in self._assignment.items()
                    if owner is client
                )
                for index, orphan in enumerate(orphans):
                    heir = self._live[index % len(self._live)]
                    self._assignment[orphan] = heir
                    self._needs_seed.add(orphan)
                reassign_events = [(orphan, client.name)
                                   for orphan in orphans]
            self._cond.notify_all()
        if self.coordinator.on_reassign is not None:
            for orphan, name in reassign_events:
                self.coordinator.on_reassign(orphan, name)

    def _on_worker_added(self, client: WorkerClient) -> None:
        with self._cond:
            if self._finished or self._failure is not None:
                return
            client.on_forward = self._on_forward
            self._live.append(client)
            thread = threading.Thread(target=self._dispatch,
                                      args=(client,), daemon=True)
            self._threads.append(thread)
            self._cond.notify_all()
        thread.start()

    # -- entry point -----------------------------------------------------

    def run(self, initial_packed: Iterable[PackedState]
            ) -> tuple[PackedGraph, bool]:
        """Explore the closure of ``initial_packed``; packed graph out.

        Raises:
            WorkerLost: every worker died, or a partition exhausted the
                coordinator's reassignment budget.
            TaskFailed: a task raised inside a worker.
        """
        clients = list(self.coordinator.clients)
        if not clients:
            raise WorkerLost("no live workers to dispatch partitions to")
        for client in clients:
            client.on_forward = self._on_forward
        self._live = list(clients)
        for partition in range(self.n_partitions):
            self._assignment[partition] = clients[partition % len(clients)]
        with self._cond:
            self._route(initial_packed)
        self.coordinator.add_membership_listener(self._on_worker_added)
        try:
            self._threads = [
                threading.Thread(target=self._dispatch, args=(client,),
                                 daemon=True)
                for client in clients
            ]
            for thread in self._threads:
                thread.start()
            while True:
                with self._cond:
                    threads = list(self._threads)
                alive = [t for t in threads if t.is_alive()]
                if not alive:
                    break
                for thread in alive:
                    thread.join()
        finally:
            self.coordinator.remove_membership_listener(
                self._on_worker_added
            )
            for client in list(self.coordinator.clients):
                client.on_forward = None
        if self._failure is not None:
            raise self._failure
        self._drop_run()
        return dict(self._edges), self._truncated

    def _drop_run(self) -> None:
        """Best-effort worker-side cleanup; failure cannot matter now."""
        for client in list(self.coordinator.clients):
            try:
                client.submit(
                    next(self._task_ids),
                    PartitionControlTask(run_id=self.run_id, op="drop-run"),
                )
            except (WorkerLost, TaskFailed):
                pass


def async_closure(coordinator: Coordinator, config: CheckerConfig,
                  initial_states, symmetric: bool,
                  n_partitions: int | None = None,
                  sequential: bool = False,
                  symmetry: SymmetryGroup | None = None,
                  on_expand: Callable[[int], None] | None = None,
                  on_partition_split:
                      "Callable[[int, str, str, int], None] | None" = None,
                  ) -> tuple[TransitionGraph, bool]:
    """Async counterpart of :func:`~repro.verify.parallel.bfs_closure`.

    Same contract — canonical initial states in, decoded tuple graph
    out — with the level loop replaced by an
    :class:`AsyncPartitionExplorer` run. The canonicalisation, codec
    derivation, and final decode are copied from ``bfs_closure`` verbatim
    so both modes feed byte-identical graphs to every downstream
    consumer.
    """
    group = resolve_symmetry(symmetric, symmetry)
    canon = {group.canonicalize(s) for s in initial_states}
    if not canon:
        return {}, False
    codec = StateCodec.for_states(len(next(iter(canon))), canon)
    if n_partitions is None:
        n_partitions = max(
            1, DEFAULT_PARTITIONS_PER_WORKER * coordinator.n_workers
        )
    explorer = AsyncPartitionExplorer(
        coordinator, config, codec, n_partitions, sequential=sequential,
        on_expand=on_expand, on_partition_split=on_partition_split,
    )
    edges, truncated = explorer.run(
        sorted(codec.encode(state) for state in canon)
    )
    return decode_graph(codec, edges), truncated


def resolve_mode(mode: str) -> str:
    """Validate an exploration mode name (one-line error on typos)."""
    if mode not in EXPLORATION_MODES:
        raise VerificationError(
            f"unknown exploration mode {mode!r}:"
            f" expected one of {', '.join(EXPLORATION_MODES)}"
        )
    return mode


# ---------------------------------------------------------------------------
# drivers (mirror repro.verify.parallel's, one shard per worker)
# ---------------------------------------------------------------------------


def _map_expand(coordinator: Coordinator, config: CheckerConfig):
    """``bfs_closure`` adapter: one batched exchange round per level."""
    def map_expand(codec, chunks, sequential):
        return coordinator.map([
            ExpandTask(config=config, codec=codec, packed=tuple(chunk),
                       sequential=sequential, trace=TRACER.enabled)
            for chunk in chunks
        ])

    return map_expand


def prove_work_conserving_distributed(
    policy, scope: StateScope, coordinator: Coordinator,
    choice_mode: str = "all", max_orders: int = DEFAULT_MAX_ORDERS,
    symmetric: bool = False,
    symmetry: SymmetryGroup | None = None,
    topology: NumaTopology | None = None,
    mode: str = "level-sync",
    partitions: int | None = None,
    on_level: Callable[[int, int, int], None] | None = None,
    on_expand: Callable[[int], None] | None = None,
    on_partition_split:
        "Callable[[int, str, str, int], None] | None" = None,
) -> WorkConservationCertificate:
    """The full §4 pipeline with one shard per remote worker.

    Identical verdicts, counterexamples, and state counts to
    :func:`~repro.verify.parallel.prove_work_conserving_parallel` at
    ``jobs = n_workers`` and to the serial path — same specs, same BFS
    striping, same reducers; only the transport differs.

    ``mode`` selects how the closure phase runs: ``"level-sync"`` (the
    barriered :func:`~repro.verify.parallel.bfs_closure`, reporting
    through ``on_level``) or ``"async"`` (the barrier-free
    :func:`async_closure` over ``partitions`` hash partitions,
    reporting cumulative progress through ``on_expand`` and steals
    through ``on_partition_split``). The sweep and liveness phases are
    mode-independent — their shard split stays one per worker either
    way, which is why both modes share one store coverage class.
    """
    resolve_mode(mode)
    n_shards = coordinator.n_workers
    if n_shards < 1:
        raise WorkerLost("no live workers to dispatch shards to")
    group = resolve_symmetry(symmetric, symmetry)
    # Built before any dispatch so invalid parameter combinations (e.g.
    # an unsound symmetry/choice_mode pairing) fail with the same clean
    # one-line error the serial path gives, not a worker traceback.
    checker = ModelChecker(policy, choice_mode=choice_mode,
                           max_orders=max_orders, symmetric=symmetric,
                           symmetry=symmetry, topology=topology)
    specs = make_shard_specs(policy, scope, n_shards, choice_mode,
                             max_orders, symmetric, symmetry=symmetry,
                             topology=topology)
    sweep_shards: list[SweepShardResult] = coordinator.map(
        [SweepTask(spec=spec, trace=TRACER.enabled) for spec in specs]
    )
    live_shards: list[LivenessShardResult] = coordinator.map(
        [LivenessTask(spec=spec, trace=TRACER.enabled) for spec in specs]
    )

    config = CheckerConfig(policy=policy, choice_mode=choice_mode,
                           max_orders=max_orders, symmetric=symmetric,
                           symmetry=symmetry, topology=topology)
    with timed_check() as timer:
        initial = group.iter_representatives(scope)
        if mode == "async":
            edges, truncated = async_closure(
                coordinator, config, initial, symmetric,
                n_partitions=partitions, sequential=False,
                symmetry=symmetry, on_expand=on_expand,
                on_partition_split=on_partition_split,
            )
        else:
            edges, truncated = bfs_closure(
                _map_expand(coordinator, config), n_shards, initial,
                symmetric, sequential=False, symmetry=symmetry,
                on_level=on_level,
            )
        analysis = checker.analyze_graph(scope, edges, truncated)
    analysis.elapsed_s = timer.elapsed

    return assemble_certificate(policy, sweep_shards, live_shards, analysis,
                                symmetric=symmetric, symmetry=symmetry)


def analyze_distributed(policy, scope: StateScope,
                        coordinator: Coordinator, choice_mode: str = "all",
                        max_orders: int = DEFAULT_MAX_ORDERS,
                        symmetric: bool = False, sequential: bool = False,
                        symmetry: SymmetryGroup | None = None,
                        topology: NumaTopology | None = None,
                        hierarchy: HierarchySpec | None = None,
                        mode: str = "level-sync",
                        partitions: int | None = None,
                        on_level: Callable[[int, int, int], None] | None = None,
                        on_expand: Callable[[int], None] | None = None,
                        on_partition_split:
                            "Callable[[int, str, str, int], None] | None" = None,
                        ) -> WorkConservationAnalysis:
    """Distributed counterpart of :func:`~repro.verify.parallel.
    analyze_parallel`: workers expand, the coordinator runs the cheap
    deterministic graph algorithms once. A
    :class:`~repro.verify.hierarchical.HierarchySpec` switches workers
    and coordinator alike to the hierarchical round checker. ``mode``
    selects barriered (``"level-sync"``) or barrier-free (``"async"``)
    closure exploration; see
    :func:`prove_work_conserving_distributed`."""
    resolve_mode(mode)
    n_shards = coordinator.n_workers
    if n_shards < 1:
        raise WorkerLost("no live workers to dispatch shards to")
    group = resolve_symmetry(symmetric, symmetry)
    checker = build_checker(policy, choice_mode=choice_mode,
                            max_orders=max_orders, symmetric=symmetric,
                            symmetry=symmetry, topology=topology,
                            hierarchy=hierarchy)
    config = CheckerConfig(policy=policy, choice_mode=choice_mode,
                           max_orders=max_orders, symmetric=symmetric,
                           symmetry=symmetry, topology=topology,
                           hierarchy=hierarchy)
    with timed_check() as timer:
        initial = group.iter_representatives(scope)
        if mode == "async":
            edges, truncated = async_closure(
                coordinator, config, initial, symmetric,
                n_partitions=partitions, sequential=sequential,
                symmetry=symmetry, on_expand=on_expand,
                on_partition_split=on_partition_split,
            )
        else:
            edges, truncated = bfs_closure(
                _map_expand(coordinator, config), n_shards, initial,
                symmetric, sequential=sequential, symmetry=symmetry,
                on_level=on_level,
            )
        analysis = checker.analyze_graph(scope, edges, truncated,
                                         sequential=sequential)
    analysis.elapsed_s = timer.elapsed
    return analysis


def run_campaign_distributed(policy_factory,
                             config: CampaignConfig | None = None,
                             coordinator: Coordinator | None = None,
                             ) -> CampaignReport:
    """Fan a randomised campaign across remote workers.

    Task slices come from the shared
    :func:`~repro.verify.parallel.make_campaign_tasks`, so the merged
    report is identical to the pool engine's at ``jobs = n_workers``
    (coverage is a function of ``(seed, worker count)``, not of engine
    or transport).
    """
    config = config or CampaignConfig()
    if coordinator is None or coordinator.n_workers < 1:
        raise WorkerLost("no live workers to dispatch campaign slices to")
    tasks = make_campaign_tasks(policy_factory, config,
                                coordinator.n_workers)
    reports: list[CampaignReport] = coordinator.map([
        CampaignTask(replicator=replicator, config=slice_config,
                     trace=TRACER.enabled)
        for replicator, slice_config in tasks
    ])
    return merge_campaign_reports(reports)

"""Reactivity: a bound on the delay to schedule ready threads.

The paper's introduction lists three performance properties no
general-purpose OS is proven to have: work conservation, fairness, and
reactivity — "a bound on the delay to schedule ready threads". This
module derives a reactivity bound *from* the work-conservation
certificate, demonstrating that the paper's proof machinery composes
upward:

    A ready task waits on some runqueue. Within
    ``N * balance_interval`` ticks the machine reaches (and keeps — good
    state closure) the no-wasted-core condition; from then on, every core
    either runs the task or runs through the tasks ahead of it, each
    holding the CPU for at most one timeslice before round-robin
    preemption cycles the queue. With at most ``T`` tasks on the machine
    the task's queue drains past it in at most ``T * timeslice`` ticks
    per cycle, so

        delay <= N * balance_interval + (T + 1) * timeslice + slack

    where the small constant ``slack`` covers phase misalignment between
    the tick that makes the task ready and the next balancing round.

This is intentionally a *coarse* bound — the point is existence and
machine-checkability, not tightness. The audit checks every measured
wait (completed and still outstanding) against it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.latency import LatencyTracker
from repro.verify.obligations import (
    Counterexample,
    Obligation,
    ProofResult,
    ProofStatus,
    timed_check,
)

REACTIVITY = Obligation(
    key="reactivity",
    title="Ready tasks are scheduled within a bounded delay",
    paper_ref="Section 1 (reactive: a bound on the delay to schedule"
              " ready threads)",
    statement=(
        "Every task that becomes ready occupies a CPU within"
        " N*balance_interval + (T+1)*timeslice ticks, where N is the"
        " work-conservation round bound and T the task population."
    ),
)


@dataclass(frozen=True)
class ReactivityBound:
    """A concrete reactivity bound for one configuration.

    Attributes:
        wc_rounds: the work-conservation bound N (rounds) used.
        balance_interval: ticks per balancing round.
        timeslice: round-robin quantum in ticks.
        max_tasks: largest simultaneous task population covered.
    """

    wc_rounds: int
    balance_interval: int
    timeslice: int
    max_tasks: int

    @property
    def ticks(self) -> int:
        """The bound itself, in ticks."""
        migration = self.wc_rounds * self.balance_interval
        queueing = (self.max_tasks + 1) * self.timeslice
        slack = self.balance_interval  # phase misalignment
        return migration + queueing + slack

    def describe(self) -> str:
        """Human-readable decomposition of the bound."""
        return (
            f"{self.ticks} ticks = {self.wc_rounds} rounds x"
            f" {self.balance_interval} (migration) +"
            f" ({self.max_tasks}+1) x {self.timeslice} (queueing) +"
            f" {self.balance_interval} (slack)"
        )


def derive_reactivity_bound(wc_rounds: int, balance_interval: int,
                            timeslice: int, max_tasks: int) -> ReactivityBound:
    """Build the bound from a work-conservation certificate's N.

    Args:
        wc_rounds: the certificate's round bound (e.g.
            ``cert.potential_bound`` or the model checker's exact N).
        balance_interval: the simulator's balancing period.
        timeslice: the simulator's preemption quantum.
        max_tasks: the largest task population of the experiment.

    Raises:
        ValueError: if any argument is non-positive.
    """
    if min(wc_rounds, balance_interval, timeslice, max_tasks) <= 0:
        raise ValueError("all reactivity-bound inputs must be positive")
    return ReactivityBound(
        wc_rounds=wc_rounds,
        balance_interval=balance_interval,
        timeslice=timeslice,
        max_tasks=max_tasks,
    )


def audit_reactivity(policy_name: str, tracker: LatencyTracker,
                     bound: ReactivityBound, now: int) -> ProofResult:
    """Check every observed wait against the bound.

    Covers both completed waits and tasks still queued at ``now`` —
    a bound that only counts dispatched tasks would be satisfied by
    starving someone forever.
    """
    checked = 0
    counterexample: Counterexample | None = None
    with timed_check() as timer:
        for wait in tracker.samples:
            checked += 1
            if wait > bound.ticks:
                counterexample = Counterexample(
                    state=(wait,),
                    detail=(
                        f"a task waited {wait} ticks before dispatch;"
                        f" bound is {bound.ticks} ({bound.describe()})"
                    ),
                    data={"wait": wait, "bound": bound.ticks},
                )
                break
        if counterexample is None:
            for tid, wait in tracker.still_waiting(now).items():
                checked += 1
                if wait > bound.ticks:
                    counterexample = Counterexample(
                        state=(wait,),
                        detail=(
                            f"task {tid} has been waiting {wait} ticks"
                            " and is still not scheduled; bound is"
                            f" {bound.ticks}"
                        ),
                        data={"tid": tid, "wait": wait,
                              "bound": bound.ticks},
                    )
                    break
    status = (
        ProofStatus.REFUTED if counterexample is not None
        else ProofStatus.PROVED_AT_SCOPE
    )
    return ProofResult(
        obligation=REACTIVITY,
        policy_name=policy_name,
        status=status,
        scope=f"simulation trace, {checked} waits",
        states_checked=checked,
        counterexample=counterexample,
        elapsed_s=timer.elapsed,
    )

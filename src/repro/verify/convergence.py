"""Convergence-speed analysis of load balancing.

The related-work section points at Xu & Lau's *Load balancing in parallel
computers: theory and practice* and says: "We plan to build upon this
work to prove latency limits on the work-conserving property of our
scheduler." This module supplies that analysis layer for the simulated
balancers:

* :func:`potential_series` — the trajectory of the paper's potential
  ``d`` across rounds, the natural Lyapunov view of balancing;
* :func:`geometric_rate` — the per-round contraction factor fitted to a
  trajectory (diffusive balancers contract geometrically; Xu & Lau's
  dimension-exchange analyses predict rates by topology);
* :func:`rounds_to_balance` — measured rounds until (a) the wasted-core
  condition clears and (b) the machine is maximally balanced (all
  pairwise gaps < margin), the two horizons the paper distinguishes
  (temporary idleness vs. indefinite waste).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.balancer import LoadBalancer
from repro.core.machine import Machine
from repro.core.policy import Policy
from repro.sim.interleave import Interleaving
from repro.verify.potential import potential


@dataclass(frozen=True)
class ConvergenceProfile:
    """One balancing run, viewed through the potential function.

    Attributes:
        d_series: ``d`` after round 0 (initial), 1, 2, ... .
        rounds_to_work_conserving: first round index with nobody idle
            while somebody is overloaded (None if never reached).
        rounds_to_quiescent: first round after which no steal intent
            exists anywhere (the balancing fixpoint; None if not reached).
        total_steals: successful steals over the run.
        total_failures: optimistic failures over the run.
    """

    d_series: tuple[int, ...]
    rounds_to_work_conserving: int | None
    rounds_to_quiescent: int | None
    total_steals: int
    total_failures: int

    @property
    def monotone(self) -> bool:
        """Whether ``d`` never increased across the run."""
        return all(
            later <= earlier
            for earlier, later in zip(self.d_series, self.d_series[1:])
        )


def potential_series(policy: Policy, loads: Sequence[int],
                     max_rounds: int = 200,
                     interleaving: Interleaving | None = None,
                     ) -> ConvergenceProfile:
    """Run the balancer and record the potential trajectory.

    Args:
        policy: the policy to profile.
        loads: initial per-core thread counts.
        max_rounds: cutoff; quiescence usually arrives far earlier.
        interleaving: optional interleaving override.

    Returns:
        The :class:`ConvergenceProfile`.
    """
    machine = Machine.from_loads(list(loads))
    balancer = LoadBalancer(machine, policy, interleaving=interleaving,
                            check_invariants=False)
    series = [potential(machine.loads())]
    wc_round: int | None = (
        0 if machine.is_work_conserving_state() else None
    )
    quiet_round: int | None = None
    for round_no in range(1, max_rounds + 1):
        record = balancer.run_round()
        series.append(potential(machine.loads()))
        if wc_round is None and machine.is_work_conserving_state():
            wc_round = round_no
        if record.quiet:
            quiet_round = round_no
            break
    return ConvergenceProfile(
        d_series=tuple(series),
        rounds_to_work_conserving=wc_round,
        rounds_to_quiescent=quiet_round,
        total_steals=balancer.total_successes,
        total_failures=balancer.total_failures,
    )


def geometric_rate(d_series: Sequence[int]) -> float | None:
    """Fit a per-round contraction factor ``r`` with ``d_k ~ d_0 * r^k``.

    Least-squares in log space over the strictly positive prefix of the
    series. Returns ``None`` when fewer than two positive points exist
    (nothing to fit — e.g. an already balanced machine).
    """
    points = [(k, d) for k, d in enumerate(d_series) if d > 0]
    if len(points) < 2:
        return None
    xs = [k for k, _ in points]
    ys = [math.log(d) for _, d in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denom = sum((x - mean_x) ** 2 for x in xs)
    if denom == 0:
        return None
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / denom
    return math.exp(slope)


@dataclass(frozen=True)
class BalanceHorizons:
    """The two convergence horizons of one run.

    Attributes:
        work_conserving: rounds to the no-wasted-core condition.
        fully_balanced: rounds to the balancing fixpoint (no intents).
    """

    work_conserving: int | None
    fully_balanced: int | None


def rounds_to_balance(policy: Policy, loads: Sequence[int],
                      max_rounds: int = 500,
                      interleaving: Interleaving | None = None,
                      ) -> BalanceHorizons:
    """Measure both convergence horizons for one initial state.

    The paper's property concerns the first horizon — "temporary idleness
    must not be treated as a violation", only *indefinite* waste is; the
    second horizon shows how much longer full balance takes.
    """
    profile = potential_series(policy, loads, max_rounds=max_rounds,
                               interleaving=interleaving)
    return BalanceHorizons(
        work_conserving=profile.rounds_to_work_conserving,
        fully_balanced=profile.rounds_to_quiescent,
    )

"""Parallel sharded verification engine.

Single-process exhaustive checking caps practical scopes at roughly
3 cores / load 0..2 (see ``benchmarks/results/zoo_matrix.txt``). This
module removes that cap by partitioning the canonical state space into
shards and fanning every sweep of the §4 pipeline — the lemma checks,
the explicit-state model checker, and the randomised campaigns — across
a :mod:`multiprocessing` pool, then merging the per-shard results with
deterministic, order-independent reducers.

Architecture
------------

The engine has three layers:

1. **Chunked iteration** (:func:`repro.verify.enumeration.iter_states_chunk`)
   — shard ``k`` of ``n`` receives the states at indices ``k, k+n,
   k+2n, ...`` of the shared lexicographic enumeration. Shards are
   pairwise disjoint, cover the scope exactly, and are sized arithmetically
   from the closed-form :func:`~repro.verify.enumeration.count_states`
   (no enumeration needed to plan the split).
2. **Shard workers** (module-level functions, picklable) — each worker
   re-runs the unchanged serial checkers on its chunk: the five
   state-sweep obligations, the progress/closure obligations, or one
   slice of a randomised campaign. The model checker's reachable-closure
   exploration is instead a **level-synchronous parallel BFS**
   (:func:`_explore_bfs`): the parent owns the frontier and stripes each
   level across the pool, so every state is expanded exactly once
   globally — chunk-local closures would overlap and waste the pool on
   redundant re-exploration. Every pool process owns one
   :class:`~repro.verify.model_checker.ModelChecker` (installed by the
   pool initializer) whose round-branch transitions are memoized keyed
   on (canonical) state — the "within each shard" transition cache,
   shared across all tasks that process serves.
3. **Reducers** — pure functions merging per-shard
   :class:`~repro.verify.obligations.ProofResult` /
   :class:`~repro.verify.campaign.CampaignReport` / transition-graph
   values. All reducers are order-independent (commutative and
   associative up to the deterministic tie-breaks described below), so
   the merged outcome does not depend on worker scheduling.

Determinism guarantees
----------------------

* **Verdicts are identical to the serial path.** A sweep obligation is
  REFUTED iff some shard refutes it, and the shards jointly cover the
  same states the serial sweep covers; the merged counterexample is the
  one whose state comes first in the serial iteration order (ties cannot
  occur — shards are disjoint), i.e. exactly the counterexample the
  serial checker reports. The merged transition graph equals the serial
  one key for key (a state's successor set is a pure function of policy
  and parameters), and the graph algorithms in
  :meth:`~repro.verify.model_checker.ModelChecker.analyze_graph` iterate
  in sorted state order — so lassos, exact worst-case ``N``, and
  state-space sizes are byte-identical to a single-process run.
* **`states_checked` differs only on refuted sweeps.** The serial
  checker stops at the first counterexample of the whole scope; each
  shard stops at the first counterexample of its own chunk, so the
  merged sum can exceed the serial count. Proved obligations sweep
  everything in both modes and report identical counts.
* **Campaigns derive one seed per worker**
  (:func:`derive_campaign_seed`), so a campaign's coverage depends on
  ``jobs`` — but is reproducible for a fixed ``(seed, jobs)`` pair, and
  every violation found is a genuine counterexample regardless of which
  worker found it. Shard reports merge by summation in shard order.
* **Merged timings are approximations**: ``elapsed_s`` of a merged
  result is the maximum across shards (the parallel wall-clock), not a
  sum of CPU time.

Usage
-----

``python -m repro verify <policy> --jobs 4`` (also ``hunt``, ``zoo``,
``campaign``) or programmatically::

    from repro.verify.parallel import prove_work_conserving_parallel
    cert = prove_work_conserving_parallel(policy, scope, jobs=4)

``jobs <= 0`` means "one worker per available CPU"; ``jobs=1`` (the
default everywhere) bypasses the pool entirely and is the serial path.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.context
import os
import pickle
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

from repro.core.policy import Policy
from repro.obs.trace import TRACER
from repro.topology.numa import NumaTopology
from repro.verify.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.verify.enumeration import (
    LoadState,
    StateScope,
    iter_states_chunk,
)
from repro.verify.hierarchical import HierarchySpec, build_checker
from repro.verify.lemmas import (
    check_choice_irrelevance,
    check_filter_soundness,
    check_lemma1,
    check_steal_soundness,
)
from repro.verify.encoding import PackedState, StateCodec, decode_graph
from repro.verify.kernel import _import_numpy
from repro.verify.model_checker import (
    ModelChecker,
    PackedGraph,
    TransitionGraph,
    WorkConservationAnalysis,
)
from repro.verify.obligations import (
    ProofReport,
    ProofResult,
    ProofStatus,
    timed_check,
)
from repro.verify.potential import (
    check_potential_decrease,
    max_potential,
    min_observed_decrease,
)
from repro.verify.symmetry import SymmetryGroup, resolve_symmetry
from repro.verify.transition import DEFAULT_MAX_ORDERS
from repro.verify.work_conservation import (
    WorkConservationCertificate,
    prove_work_conserving,
)

#: Obligation keys swept by the state-sweep worker, in pipeline order.
SWEEP_OBLIGATION_KEYS = (
    "lemma1",
    "filter_soundness",
    "steal_soundness",
    "choice_irrelevance",
    "potential_decrease",
)


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None``/``1`` serial, ``<= 0`` all CPUs."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap, shares the loaded modules) when available.

    Falls back to ``spawn`` and finally the platform default, so runners
    without ``fork`` (macOS with the 3.8+ default, Windows) degrade to a
    slower-starting pool instead of crashing.
    """
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn"):
        if method in methods:
            try:
                return multiprocessing.get_context(method)
            except ValueError:  # platform advertises but refuses it
                continue
    return multiprocessing.get_context()


class PolicyReplicator:
    """A picklable zero-argument policy factory.

    Clones a template policy by round-tripping it through :mod:`pickle`,
    so the parallel campaign can ship one factory to every worker even
    when the caller's own factory is an unpicklable closure (the CLI's
    is). Each call returns a fresh, independent instance — policies may
    hold RNG state, and clones must not share it with the template.
    """

    def __init__(self, template: Policy) -> None:
        self._blob = pickle.dumps(template)

    def __call__(self) -> Policy:
        return pickle.loads(self._blob)


# ---------------------------------------------------------------------------
# shard specifications and workers (module-level: must be picklable)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs to sweep its shard.

    Attributes:
        policy: the policy under verification (pickled to the worker).
        scope: the full verification scope; the worker derives its chunk
            from ``(shard, n_shards)``.
        shard: this worker's shard index, in ``[0, n_shards)``.
        n_shards: total number of shards.
        choice_mode: forwarded to the model checker.
        max_orders: forwarded to the model checker.
        symmetric: legacy flat-group flag; forwarded to the model
            checker and, with ``symmetry``, selects the representative
            chunk iterator for the liveness sweeps.
        sequential: §4.2 regime flag for exploration workers.
        symmetry: explicit symmetry group quotienting the liveness
            sweeps (overrides ``symmetric``).
        topology: machine layout for node-aware snapshot views.
    """

    policy: Policy
    scope: StateScope
    shard: int
    n_shards: int
    choice_mode: str = "all"
    max_orders: int = DEFAULT_MAX_ORDERS
    symmetric: bool = False
    sequential: bool = False
    symmetry: SymmetryGroup | None = None
    topology: NumaTopology | None = None


@dataclass
class SweepShardResult:
    """One shard's share of the five state-sweep obligations.

    Attributes:
        results: obligation key -> per-shard :class:`ProofResult`.
        min_decrease: shard-local :func:`min_observed_decrease`
            (``None`` when no steal was admissible in the chunk).
        max_potential: shard-local maximum of ``d`` (``None`` for an
            empty chunk) — merged by ``max`` to derive the certificate's
            round bound without a second global sweep.
    """

    results: dict[str, ProofResult] = field(default_factory=dict)
    min_decrease: int | None = None
    max_potential: int | None = None


@dataclass
class LivenessShardResult:
    """One shard's share of the model-checking obligations.

    Attributes:
        progress: per-shard progress obligation result.
        closure: per-shard good-state-closure obligation result.
    """

    progress: ProofResult
    closure: ProofResult


def _chunk(spec: ShardSpec) -> list[LoadState]:
    """The shard's chunk of the (plain) lexicographic enumeration."""
    return list(iter_states_chunk(spec.scope, spec.shard, spec.n_shards))


def _initial_chunk(spec: ShardSpec) -> list[LoadState]:
    """The shard's chunk of the model checker's initial-state sweep."""
    group = resolve_symmetry(spec.symmetric, spec.symmetry)
    return list(group.iter_representatives_chunk(
        spec.scope, spec.shard, spec.n_shards
    ))


def sweep_shard_worker(spec: ShardSpec) -> SweepShardResult:
    """Run the five state-sweep obligations over one shard's chunk."""
    chunk = _chunk(spec)
    out = SweepShardResult()
    out.results["lemma1"] = check_lemma1(spec.policy, spec.scope, chunk)
    out.results["filter_soundness"] = check_filter_soundness(
        spec.policy, spec.scope, chunk
    )
    out.results["steal_soundness"] = check_steal_soundness(
        spec.policy, spec.scope, chunk
    )
    out.results["choice_irrelevance"] = check_choice_irrelevance(
        spec.policy, spec.scope, chunk
    )
    out.results["potential_decrease"] = check_potential_decrease(
        spec.policy, spec.scope, chunk
    )
    out.min_decrease = min_observed_decrease(spec.policy, spec.scope, chunk)
    out.max_potential = max_potential(spec.scope, chunk)
    return out


def liveness_shard_worker(spec: ShardSpec) -> LivenessShardResult:
    """Run progress and good-state closure over one shard's chunk.

    Uses the per-process checker installed by :func:`_init_worker` when
    running inside the engine's pool (its branch/successor memos then
    carry over into the BFS expansion phase); builds a private checker
    when called directly.
    """
    checker = _worker_checker(spec)
    chunk = _initial_chunk(spec)
    progress = checker.check_progress(spec.scope, chunk)
    closure = checker.check_good_state_closure(spec.scope, chunk)
    return LivenessShardResult(progress=progress, closure=closure)


#: Per-process state installed by :func:`_init_worker` (one checker per
#: pool worker; its transition memos persist across all tasks the worker
#: serves, including every BFS expansion level).
_WORKER_CHECKER: ModelChecker | None = None


def _init_worker(policy: Policy | None, choice_mode: str, max_orders: int,
                 symmetric: bool,
                 symmetry: SymmetryGroup | None = None,
                 topology: NumaTopology | None = None,
                 hierarchy: HierarchySpec | None = None) -> None:
    """Pool initializer: build this worker process's memoized checker."""
    global _WORKER_CHECKER
    _WORKER_CHECKER = build_checker(
        policy, choice_mode=choice_mode, max_orders=max_orders,
        symmetric=symmetric, symmetry=symmetry, topology=topology,
        hierarchy=hierarchy,
    )


def _worker_checker(spec: ShardSpec) -> ModelChecker:
    """The pool-installed checker, or a private one outside the pool."""
    if _WORKER_CHECKER is not None:
        return _WORKER_CHECKER
    return build_checker(
        spec.policy, choice_mode=spec.choice_mode,
        max_orders=spec.max_orders, symmetric=spec.symmetric,
        symmetry=spec.symmetry, topology=spec.topology,
    )


def expand_states_worker(
    args: tuple[StateCodec, list[PackedState], bool],
) -> tuple[PackedGraph, bool]:
    """Expand one packed BFS chunk: successors of each state.

    Runs inside the engine's pool (requires :func:`_init_worker`). The
    chunk's states were never expanded before — the parent's frontier
    bookkeeping guarantees global exactly-once expansion, which is what
    makes the BFS scale where naive closure-per-shard exploration would
    re-explore overlapping reachable sets in every worker. States
    travel packed (:mod:`repro.verify.encoding`) and the result graph
    stays packed; the parent decodes once at the end of the closure.
    """
    codec, states, sequential = args
    assert _WORKER_CHECKER is not None, "pool must install the checker"
    return _WORKER_CHECKER.expand_packed(states, codec,
                                         sequential=sequential)


def campaign_shard_worker(
    args: tuple[PolicyReplicator, CampaignConfig],
) -> CampaignReport:
    """Run one worker's slice of a randomised campaign."""
    replicator, config = args
    return run_campaign(replicator, config)


# ---------------------------------------------------------------------------
# reducers (deterministic, order-independent)
# ---------------------------------------------------------------------------


def merge_proof_results(
    shards: list[ProofResult],
    order_key: "Callable[[tuple[int, ...]], tuple[int, ...]] | None" = None,
) -> ProofResult:
    """Merge per-shard results of one obligation into the scope result.

    REFUTED dominates; among refuting shards the counterexample whose
    state comes first in the serial iteration order wins. ``order_key``
    is the symmetry group's
    :meth:`~repro.verify.symmetry.SymmetryGroup.serial_order_key`
    (``None`` means the plain ascending lexicographic order of
    :func:`~repro.verify.enumeration.iter_states`, i.e. the trivial
    group). Because shards partition the scope and each reports the
    first counterexample of its own chunk, that winner is exactly the
    counterexample the serial sweep would have reported.
    ``states_checked`` sums; ``elapsed_s`` is the max across shards
    (the parallel wall-clock).

    Raises:
        ValueError: when ``shards`` is empty or mixes obligations.
    """
    if not shards:
        raise ValueError("cannot merge zero shard results")
    keys = {r.obligation.key for r in shards}
    if len(keys) != 1:
        raise ValueError(f"cannot merge results of obligations {sorted(keys)}")
    refuted = [r for r in shards if r.status is ProofStatus.REFUTED]
    winner: ProofResult | None = None
    if refuted:
        def serial_order(result: ProofResult) -> tuple[int, ...]:
            assert result.counterexample is not None
            state = tuple(result.counterexample.state)
            return state if order_key is None else order_key(state)

        winner = min(refuted, key=serial_order)
    return ProofResult(
        obligation=shards[0].obligation,
        policy_name=shards[0].policy_name,
        status=(ProofStatus.REFUTED if winner is not None
                else shards[0].status),
        scope=shards[0].scope,
        states_checked=sum(r.states_checked for r in shards),
        counterexample=winner.counterexample if winner is not None else None,
        elapsed_s=max(r.elapsed_s for r in shards),
    )


def merge_graphs(
    graphs: list[tuple[TransitionGraph, bool]],
) -> tuple[TransitionGraph, bool]:
    """Union per-shard transition graphs.

    Sound because a state's successor set is a pure function of
    (policy, state, checker parameters): two shards reaching the same
    state computed identical edges, so dict union is conflict-free and
    the result equals the serial exploration of the whole scope.
    """
    edges: TransitionGraph = {}
    truncated = False
    for shard_edges, shard_truncated in graphs:
        edges.update(shard_edges)
        truncated = truncated or shard_truncated
    return edges, truncated


def merge_campaign_reports(shards: list[CampaignReport]) -> CampaignReport:
    """Sum per-worker campaign reports (violations kept in shard order)."""
    if not shards:
        raise ValueError("cannot merge zero campaign reports")
    merged = CampaignReport(policy_name=shards[0].policy_name)
    for report in shards:
        merged.machines += report.machines
        merged.rounds += report.rounds
        merged.steals += report.steals
        merged.failures += report.failures
        merged.violations.extend(report.violations)
        merged.max_rounds_to_quiescence = max(
            merged.max_rounds_to_quiescence, report.max_rounds_to_quiescence
        )
    return merged


def derive_campaign_seed(seed: int, shard: int) -> int:
    """Worker ``shard``'s campaign seed, derived from the master seed.

    A fixed affine mix (golden-ratio increment) keeps worker streams
    disjoint in practice while remaining reproducible for a given
    ``(seed, shard)`` pair.
    """
    return (seed * 1_000_003 + 0x9E3779B9 * (shard + 1)) % (2 ** 63)


# ---------------------------------------------------------------------------
# the engine-agnostic core: spec generation, BFS, certificate assembly
# ---------------------------------------------------------------------------
#
# Everything below `drivers` dispatches work through either a
# multiprocessing pool (this module) or a coordinator over remote
# workers (repro.verify.distributed). The two engines share this core:
# the same shard specs, the same frontier-exchange BFS (parameterised on
# "map these chunks to (edges, truncated) pairs"), and the same
# certificate assembly over the merged shard results — which is what
# guarantees their verdicts are byte-identical to each other and to the
# serial path.


def make_shard_specs(policy: Policy, scope: StateScope, n_shards: int,
                     choice_mode: str = "all",
                     max_orders: int = DEFAULT_MAX_ORDERS,
                     symmetric: bool = False,
                     sequential: bool = False,
                     symmetry: SymmetryGroup | None = None,
                     topology: NumaTopology | None = None,
                     ) -> list[ShardSpec]:
    """One :class:`ShardSpec` per shard, covering ``scope`` exactly."""
    return [
        ShardSpec(
            policy=policy, scope=scope, shard=shard, n_shards=n_shards,
            choice_mode=choice_mode, max_orders=max_orders,
            symmetric=symmetric, sequential=sequential,
            symmetry=symmetry, topology=topology,
        )
        for shard in range(n_shards)
    ]


def partition_of(packed: PackedState, codec: StateCodec,
                 n_partitions: int) -> int:
    """The hash partition a canonical packed state belongs to.

    The asynchronous distributed engine owns each reachable state at
    exactly one partition, chosen here. Two properties matter:

    * **Seed-independent.** The hash is blake2b over the state's
      canonical byte form — never the builtin ``hash()``, which
      ``PYTHONHASHSEED`` perturbs per process; workers and coordinator
      must agree on ownership across process and host boundaries.
    * **Form-stable.** ``StateCodec.canonical_bytes`` re-serialises the
      int form as fixed-length big-endian, which is byte-for-byte the
      codec's bytes form, so a state maps to the same partition whether
      the scope packed into an ``int`` or ``bytes``
      (property-tested in ``tests/verify/test_async_partition.py``).
    """
    digest = hashlib.blake2b(
        codec.canonical_bytes(packed), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_partitions


def bfs_closure(map_expand: Callable, n_shards: int,
                initial_states: Iterable[LoadState],
                symmetric: bool,
                sequential: bool = False,
                symmetry: SymmetryGroup | None = None,
                on_level: "Callable[[int, int, int], None] | None" = None,
                ) -> tuple[TransitionGraph, bool]:
    """Level-synchronous BFS over the reachable closure, engine-agnostic.

    The caller owns the ``seen`` set and the frontier, both held in
    *packed* form (:mod:`repro.verify.encoding`; the codec is derived
    here from the initial states and shipped with every chunk). Each
    level, the sorted packed frontier is striped round-robin into
    ``n_shards`` chunks and handed to ``map_expand(codec, chunks,
    sequential)``, which must return one packed ``(edges, truncated)``
    pair per chunk (a pool maps them onto worker processes; a
    coordinator ships them to remote workers as one batched
    frontier-exchange round per level). The codec is order-preserving,
    so the packed sort stripes states into exactly the chunks the tuple
    engine built. Every state is expanded exactly once globally (unlike
    closure-per-shard exploration, whose shards each re-explore the
    overlap of their reachable sets), so expansion work — the dominant
    cost of refuted policies with large closures — splits ``n_shards``
    ways, and each level costs one round trip regardless of link
    latency. The finished graph is decoded back to tuple form before
    returning, keeping every downstream consumer byte-identical to the
    tuple engine.

    ``on_level`` (when given) is called after each completed level with
    ``(level_index, states_expanded_this_level, next_frontier_size)`` —
    the hook :class:`repro.api.Session` turns into ``LevelCompleted``
    progress events. The callback cannot influence exploration.
    """
    group = resolve_symmetry(symmetric, symmetry)
    canon = {group.canonicalize(s) for s in initial_states}
    if not canon:
        return {}, False
    codec = StateCodec.for_states(len(next(iter(canon))), canon)
    numpy = _import_numpy() if codec.use_int else None
    edges: PackedGraph = {}
    truncated = False
    level = 0
    if numpy is not None:
        # Array-native frontier bookkeeping: visited membership is a
        # sorted int64 array probed with one searchsorted merge per
        # level. Shard edge dicts stay the wire form; their successor
        # frozensets drain through one ``fromiter`` pass instead of
        # per-successor set probes. The fresh frontier comes out
        # ascending — exactly ``sorted(next_frontier)`` — so striping
        # and every downstream byte are unchanged.
        frontier_arr = numpy.unique(numpy.asarray(
            codec.encode_batch(list(canon)), dtype=numpy.int64
        ))
        seen_arr = frontier_arr
        while frontier_arr.size:
            frontier = frontier_arr.tolist()
            chunks = [frontier[shard::n_shards]
                      for shard in range(n_shards)]
            chunks = [chunk for chunk in chunks if chunk]
            with TRACER.span("closure.level", "closure", level=level,
                             frontier=len(frontier),
                             chunks=len(chunks)):
                for shard_edges, shard_truncated in map_expand(
                    codec, chunks, sequential
                ):
                    edges.update(shard_edges)
                    truncated = truncated or shard_truncated
            candidates = numpy.unique(numpy.fromiter(
                (s for state in frontier for s in edges[state]),
                dtype=numpy.int64,
            ))
            pos = numpy.searchsorted(seen_arr, candidates)
            clipped = numpy.minimum(pos, seen_arr.size - 1)
            fresh = candidates[
                (pos == seen_arr.size) | (seen_arr[clipped] != candidates)
            ]
            seen_arr = numpy.insert(
                seen_arr, numpy.searchsorted(seen_arr, fresh), fresh
            )
            if on_level is not None:
                on_level(level, len(frontier), int(fresh.size))
            level += 1
            frontier_arr = fresh
        return decode_graph(codec, edges), truncated
    frontier = sorted(codec.encode(s) for s in canon)
    seen = set(frontier)
    while frontier:
        chunks = [frontier[shard::n_shards] for shard in range(n_shards)]
        chunks = [chunk for chunk in chunks if chunk]
        with TRACER.span("closure.level", "closure", level=level,
                         frontier=len(frontier), chunks=len(chunks)):
            for shard_edges, shard_truncated in map_expand(codec, chunks,
                                                           sequential):
                edges.update(shard_edges)
                truncated = truncated or shard_truncated
        next_frontier = {
            successor
            for state in frontier
            for successor in edges[state]
            if successor not in seen
        }
        seen.update(next_frontier)
        if on_level is not None:
            on_level(level, len(frontier), len(next_frontier))
        level += 1
        frontier = sorted(next_frontier)
    return decode_graph(codec, edges), truncated


def assemble_certificate(
    policy: Policy,
    sweep_shards: list[SweepShardResult],
    live_shards: list[LivenessShardResult],
    analysis: WorkConservationAnalysis,
    symmetric: bool = False,
    symmetry: SymmetryGroup | None = None,
) -> WorkConservationCertificate:
    """Merge per-shard results into the full §4 certificate.

    The merge core both engines end on: sweep obligations merge with
    :func:`merge_proof_results`, the liveness obligations likewise (in
    the symmetry group's representative-enumeration order, so the merged
    counterexample is the serial sweep's), and the potential bound is
    derived from the shard-local ``min_decrease``/``max_potential``
    extrema — no second global sweep.
    """
    group = resolve_symmetry(symmetric, symmetry)
    report = ProofReport(policy_name=policy.name)
    for key in SWEEP_OBLIGATION_KEYS:
        report.add(merge_proof_results(
            [shard.results[key] for shard in sweep_shards]
        ))
    report.add(merge_proof_results(
        [shard.progress for shard in live_shards],
        order_key=group.serial_order_key,
    ))
    report.add(merge_proof_results(
        [shard.closure for shard in live_shards],
        order_key=group.serial_order_key,
    ))
    report.add(analysis.to_proof_result())

    potential_ok = report.result_for("potential_decrease").ok
    min_decrease = None
    bound = None
    if potential_ok:
        observed = [s.min_decrease for s in sweep_shards
                    if s.min_decrease is not None]
        min_decrease = min(observed) if observed else None
        if min_decrease is not None and min_decrease > 0:
            peaks = [s.max_potential for s in sweep_shards
                     if s.max_potential is not None]
            if peaks:
                bound = max(peaks) // min_decrease + 1

    proved = report.all_proved and not analysis.violated
    return WorkConservationCertificate(
        policy_name=policy.name,
        report=report,
        analysis=analysis,
        potential_bound=bound,
        min_decrease=min_decrease,
        proved=proved,
    )


def make_campaign_tasks(
    policy_factory, config: CampaignConfig, jobs: int,
) -> list[tuple[PolicyReplicator, CampaignConfig]]:
    """Split a campaign into per-worker ``(replicator, slice)`` tasks.

    The machine budget is split as evenly as possible (the first
    ``n_machines % jobs`` workers take one extra machine); worker ``i``
    fuzzes with seed :func:`derive_campaign_seed` ``(config.seed, i)``.
    Both the pool and the distributed engine build their task lists here,
    so a campaign's coverage is a function of ``(seed, worker count)``
    alone — not of which engine ran it.
    """
    jobs = min(jobs, max(1, config.n_machines))
    replicator = PolicyReplicator(policy_factory())
    if jobs <= 1:
        return [(replicator, config)]
    base, extra = divmod(config.n_machines, jobs)
    shares = [base + (1 if i < extra else 0) for i in range(jobs)]
    return [
        (replicator, replace(config, n_machines=share,
                             seed=derive_campaign_seed(config.seed, i)))
        for i, share in enumerate(shares) if share > 0
    ]


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


def _explore_bfs(pool, jobs: int, initial_states, symmetric: bool,
                 sequential: bool,
                 symmetry: SymmetryGroup | None = None,
                 on_level: "Callable[[int, int, int], None] | None" = None,
                 ) -> tuple[TransitionGraph, bool]:
    """Pool-backed :func:`bfs_closure`: chunks map onto worker processes."""
    def map_expand(codec, chunks, seq):
        return pool.map(expand_states_worker,
                        [(codec, chunk, seq) for chunk in chunks])

    return bfs_closure(map_expand, jobs, initial_states, symmetric,
                       sequential=sequential, symmetry=symmetry,
                       on_level=on_level)


def prove_work_conserving_parallel(
    policy: Policy, scope: StateScope, jobs: int | None = None,
    choice_mode: str = "all", max_orders: int = DEFAULT_MAX_ORDERS,
    symmetric: bool = False,
    symmetry: SymmetryGroup | None = None,
    topology: NumaTopology | None = None,
    on_level: "Callable[[int, int, int], None] | None" = None,
) -> WorkConservationCertificate:
    """The full §4 pipeline of :func:`prove_work_conserving`, sharded.

    With ``jobs`` workers the scope is split into ``jobs`` round-robin
    shards; every sweep runs chunk-local in the pool and the per-shard
    results are merged as described in the module docstring. Verdicts —
    per-obligation statuses, the model checker's lasso / exact ``N``, the
    potential bound, and ``proved`` — are identical to the serial path.

    ``jobs=None``/``1`` delegates to the serial implementation.
    """
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return prove_work_conserving(
            policy, scope, choice_mode=choice_mode,
            max_orders=max_orders, symmetric=symmetric,
            symmetry=symmetry, topology=topology,
        )

    group = resolve_symmetry(symmetric, symmetry)
    specs = make_shard_specs(policy, scope, jobs, choice_mode, max_orders,
                             symmetric, symmetry=symmetry,
                             topology=topology)
    ctx = _pool_context()
    checker = ModelChecker(
        policy, choice_mode=choice_mode, max_orders=max_orders,
        symmetric=symmetric, symmetry=symmetry, topology=topology,
    )
    with ctx.Pool(
        processes=jobs, initializer=_init_worker,
        initargs=(policy, choice_mode, max_orders, symmetric, symmetry,
                  topology),
    ) as pool:
        sweep_shards = pool.map(sweep_shard_worker, specs)
        live_shards = pool.map(liveness_shard_worker, specs)
        with timed_check() as timer:
            initial = group.iter_representatives(scope)
            edges, truncated = _explore_bfs(
                pool, jobs, initial, symmetric, sequential=False,
                symmetry=symmetry, on_level=on_level,
            )
            analysis = checker.analyze_graph(scope, edges, truncated)
    analysis.elapsed_s = timer.elapsed

    return assemble_certificate(policy, sweep_shards, live_shards, analysis,
                                symmetric=symmetric, symmetry=symmetry)


def analyze_parallel(policy: Policy | None, scope: StateScope,
                     jobs: int | None = None, choice_mode: str = "all",
                     max_orders: int = DEFAULT_MAX_ORDERS,
                     symmetric: bool = False, sequential: bool = False,
                     symmetry: SymmetryGroup | None = None,
                     topology: NumaTopology | None = None,
                     hierarchy: HierarchySpec | None = None,
                     on_level: "Callable[[int, int, int], None] | None" = None,
                     ) -> WorkConservationAnalysis:
    """Sharded :meth:`~repro.verify.model_checker.ModelChecker.analyze`.

    Workers explore disjoint chunks of the initial states; the parent
    unions the transition graphs and runs the (cheap, deterministic)
    lasso/worst-case algorithms once — the ``hunt`` CLI path. Passing a
    :class:`~repro.verify.hierarchical.HierarchySpec` model-checks the
    two-level hierarchical round instead of the flat one (``policy`` is
    then ignored).
    """
    jobs = resolve_jobs(jobs)
    checker = build_checker(
        policy, choice_mode=choice_mode, max_orders=max_orders,
        symmetric=symmetric, symmetry=symmetry, topology=topology,
        hierarchy=hierarchy,
    )
    if jobs <= 1:
        return checker.analyze(scope, sequential=sequential)
    group = resolve_symmetry(symmetric, symmetry)
    ctx = _pool_context()
    with timed_check() as timer:
        with ctx.Pool(
            processes=jobs, initializer=_init_worker,
            initargs=(policy, choice_mode, max_orders, symmetric, symmetry,
                      topology, hierarchy),
        ) as pool:
            initial = group.iter_representatives(scope)
            edges, truncated = _explore_bfs(
                pool, jobs, initial, symmetric, sequential=sequential,
                symmetry=symmetry, on_level=on_level,
            )
        analysis = checker.analyze_graph(
            scope, edges, truncated, sequential=sequential
        )
    analysis.elapsed_s = timer.elapsed
    return analysis


def run_campaign_parallel(policy_factory, config: CampaignConfig | None = None,
                          jobs: int | None = None) -> CampaignReport:
    """Fan a randomised campaign across workers, one derived seed each.

    The machine budget is split as evenly as possible (the first
    ``n_machines % jobs`` workers take one extra machine); worker ``i``
    fuzzes with seed :func:`derive_campaign_seed` ``(config.seed, i)``.
    Coverage therefore depends on ``jobs``, but any fixed ``(seed,
    jobs)`` pair reproduces exactly, and merged totals count every
    machine/round/steal once.
    """
    config = config or CampaignConfig()
    jobs = resolve_jobs(jobs)
    if jobs <= 1:
        return run_campaign(policy_factory, config)
    tasks = make_campaign_tasks(policy_factory, config, jobs)
    ctx = _pool_context()
    with ctx.Pool(processes=len(tasks)) as pool:
        shard_reports = pool.map(campaign_shard_worker, tasks)
    return merge_campaign_reports(shard_reports)

"""Try-locks and the two-runqueue stealing protocol.

Section 3.1 fixes the concurrency discipline this module implements:

* the **selection phase** takes no locks ("the selection phase is
  lock-less") and is read-only;
* the **stealing phase** "must be done atomically for correctness (i.e.,
  no two cores should be able to steal the same thread)"; Figure 1
  annotates it with "src and dst locked".

The simulator is single-threaded, so these locks never block a real OS
thread; what they model is the *protocol*: who is allowed to mutate which
runqueue at which point of an interleaving, which steal attempts collide,
and how much lock contention a policy generates. Locks are acquired in
canonical (ascending core id) order, the standard deadlock-avoidance rule
Linux itself uses for double-runqueue locking.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.errors import LockProtocolError


@dataclass
class LockStats:
    """Counters describing lock traffic, per runqueue lock.

    Attributes:
        acquisitions: successful lock acquisitions.
        failed_trylocks: try-lock attempts that found the lock held.
        releases: lock releases.
    """

    acquisitions: int = 0
    failed_trylocks: int = 0
    releases: int = 0


class TryLock:
    """A non-blocking mutual-exclusion token for one runqueue.

    Attributes:
        name: human-readable identifier (``"rq0"`` for core 0's lock).
        holder: id of the core currently holding the lock, or ``None``.
        stats: :class:`LockStats` accumulated over the lock's lifetime.
    """

    __slots__ = ("name", "holder", "stats")

    def __init__(self, name: str) -> None:
        self.name = name
        self.holder: int | None = None
        self.stats = LockStats()

    @property
    def held(self) -> bool:
        """Whether any core currently holds the lock."""
        return self.holder is not None

    def try_acquire(self, requester: int) -> bool:
        """Attempt to take the lock without blocking.

        Args:
            requester: id of the core attempting the acquisition.

        Returns:
            True when the lock was free and is now held by ``requester``.
        """
        if self.holder is not None:
            self.stats.failed_trylocks += 1
            return False
        self.holder = requester
        self.stats.acquisitions += 1
        return True

    def release(self, requester: int) -> None:
        """Release the lock.

        Raises:
            LockProtocolError: if ``requester`` does not hold the lock —
                releasing someone else's lock is always a protocol bug.
        """
        if self.holder != requester:
            raise LockProtocolError(
                f"core {requester} released {self.name} held by {self.holder}"
            )
        self.holder = None
        self.stats.releases += 1


@dataclass
class LockManager:
    """All runqueue locks of a machine plus the double-lock protocol.

    Attributes:
        locks: one :class:`TryLock` per core, indexed by core id.
    """

    n_cores: int
    locks: list[TryLock] = field(init=False)

    def __post_init__(self) -> None:
        self.locks = [TryLock(f"rq{cid}") for cid in range(self.n_cores)]

    def lock_of(self, cid: int) -> TryLock:
        """Return the runqueue lock of core ``cid``."""
        return self.locks[cid]

    def try_lock_pair(self, requester: int, a: int, b: int) -> bool:
        """Try to lock the runqueues of cores ``a`` and ``b`` atomically.

        Locks are taken in ascending core-id order (deadlock avoidance);
        if the second acquisition fails the first is rolled back, so the
        call either holds both locks or none.

        Args:
            requester: core performing the steal (usually equals ``a``).
            a: first core id (conventionally the thief).
            b: second core id (conventionally the victim).

        Returns:
            True when both locks are now held by ``requester``.
        """
        if a == b:
            raise LockProtocolError(
                f"core {requester} double-locking runqueue {a} against itself"
            )
        first, second = (a, b) if a < b else (b, a)
        if not self.locks[first].try_acquire(requester):
            return False
        if not self.locks[second].try_acquire(requester):
            self.locks[first].release(requester)
            return False
        return True

    def unlock_pair(self, requester: int, a: int, b: int) -> None:
        """Release a pair previously taken with :meth:`try_lock_pair`."""
        first, second = (a, b) if a < b else (b, a)
        self.locks[second].release(requester)
        self.locks[first].release(requester)

    @contextmanager
    def pair(self, requester: int, a: int, b: int) -> Iterator[bool]:
        """Context manager wrapping try-lock-pair/unlock-pair.

        Yields True when both locks were acquired; the locks (if held)
        are released on exit regardless of exceptions::

            with lock_manager.pair(thief, thief, victim) as locked:
                if locked:
                    ...steal...
        """
        locked = self.try_lock_pair(requester, a, b)
        try:
            yield locked
        finally:
            if locked:
                self.unlock_pair(requester, a, b)

    def assert_all_free(self) -> None:
        """Raise unless every lock is free (end-of-round sanity check)."""
        held = [lock.name for lock in self.locks if lock.held]
        if held:
            raise LockProtocolError(
                f"locks still held at end of round: {', '.join(held)}"
            )

    def total_contention(self) -> int:
        """Total failed try-lock attempts across all runqueue locks."""
        return sum(lock.stats.failed_trylocks for lock in self.locks)

    def total_acquisitions(self) -> int:
        """Total successful acquisitions across all runqueue locks."""
        return sum(lock.stats.acquisitions for lock in self.locks)

"""Virtual time for the discrete-event simulator.

CFS triggers load balancing "simultaneously on all cores every 4ms"
(Section 3.1). The simulator mirrors that with a virtual clock measured in
abstract *time units*; one unit is one task execution quantum, and a
balancing round fires every ``balance_interval`` units. Nothing in the
proofs depends on the absolute scale — only on the round structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError


@dataclass
class VirtualClock:
    """A monotonically advancing virtual clock.

    Attributes:
        now: current virtual time in time units.
        balance_interval: period of load-balancing rounds, in time units
            (the model's analogue of CFS's 4ms).
    """

    balance_interval: int = 4
    now: int = 0
    _next_balance: int = field(init=False)

    def __post_init__(self) -> None:
        if self.balance_interval <= 0:
            raise ConfigurationError(
                f"balance_interval must be > 0, got {self.balance_interval}"
            )
        if self.now < 0:
            raise ConfigurationError(f"now must be >= 0, got {self.now}")
        self._next_balance = self.now + self.balance_interval

    def advance(self, units: int = 1) -> int:
        """Advance time by ``units`` and return the new time."""
        if units < 0:
            raise ConfigurationError(f"cannot advance by {units}")
        self.now += units
        return self.now

    def balance_due(self) -> bool:
        """Whether a load-balancing round is due at the current time."""
        return self.now >= self._next_balance

    def mark_balanced(self) -> None:
        """Record that the due balancing round ran; schedule the next one."""
        self._next_balance = self.now + self.balance_interval

    def time_to_next_balance(self) -> int:
        """Units remaining until the next balancing round is due."""
        return max(0, self._next_balance - self.now)

"""Interleaving strategies for concurrent load-balancing rounds.

Section 4 of the paper studies two regimes:

* the **sequential** setting (§4.2): "core 0 first does all three
  load-balancing steps in isolation, then core 1 does all three steps,
  etc." — selections always see fresh state, so steals never fail;
* the **concurrent** setting (§4.3): all cores select on the same (possibly
  stale) observations, then their steal operations race; the order in
  which racing steals hit the locks decides which succeed.

An :class:`Interleaving` reifies those regimes so the same
:class:`~repro.core.balancer.LoadBalancer` can run under any of them, and
so the model checker can *quantify over* adversarial orderings — the
paper's work-conservation definition is ∀-quantified over whatever the
concurrency does, which here means: over every interleaving.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.errors import ConfigurationError


class Interleaving(ABC):
    """Strategy deciding how one round's per-core operations interleave.

    Attributes:
        fresh_snapshots: when True, each core snapshots the machine
            immediately before its own selection (the §4.2 sequential
            regime, in which stale reads — and hence failures — cannot
            occur). When False, every core selects on the same round-start
            snapshot vector and the steal operations race.
    """

    fresh_snapshots: bool = False

    #: True for the overlapped-critical-section regime; the balancer
    #: then drives steals through :meth:`schedule_micro_ops`.
    overlapped: bool = False

    #: True for the op-level pipelined regime; the balancer then drives
    #: the round through :meth:`op_schedule`.
    pipelined: bool = False

    @abstractmethod
    def participant_order(self, round_index: int,
                          cids: Sequence[int]) -> list[int]:
        """Order in which cores perform their balancing operation.

        Args:
            round_index: monotonically increasing round number.
            cids: participating core ids in ascending order.

        Returns:
            A permutation of ``cids``.
        """

    def steal_order(self, round_index: int,
                    thief_cids: Sequence[int]) -> list[int]:
        """Order in which racing steal operations reach the locks.

        Only consulted when ``fresh_snapshots`` is False. Defaults to the
        participant order.

        Args:
            round_index: monotonically increasing round number.
            thief_cids: ids of cores that produced a steal intent.

        Returns:
            A permutation of ``thief_cids``.
        """
        return self.participant_order(round_index, thief_cids)

    def op_schedule(self, round_index: int,
                    cids: Sequence[int]) -> list[tuple[str, int]]:
        """The (op, cid) schedule of a pipelined round.

        Only meaningful when :attr:`pipelined` is True; the base class
        has no op-level structure.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not an op-level interleaving"
        )

    def schedule_micro_ops(self, round_index: int,
                           thief_cids: Sequence[int]) -> list[int]:
        """The micro-op schedule of an overlapped round.

        Only meaningful when :attr:`overlapped` is True; the base class
        has no micro-op structure.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no overlapping critical sections"
        )


class SequentialInterleaving(Interleaving):
    """The §4.2 regime: cores balance one after another, in core-id order.

    Selections always run against fresh state, so a steal's locked
    re-check can never disagree with its selection: failures are
    impossible, which is what makes the sequential proofs "simple".
    """

    fresh_snapshots = True

    def participant_order(self, round_index: int,
                          cids: Sequence[int]) -> list[int]:
        return list(cids)


class RotatingSequentialInterleaving(Interleaving):
    """Sequential regime with a rotating starting core.

    Avoids systematically privileging low-numbered cores across rounds;
    useful in fairness-flavoured experiments.
    """

    fresh_snapshots = True

    def participant_order(self, round_index: int,
                          cids: Sequence[int]) -> list[int]:
        if not cids:
            return []
        pivot = round_index % len(cids)
        return list(cids[pivot:]) + list(cids[:pivot])


class ConcurrentInterleaving(Interleaving):
    """The §4.3 regime with a deterministic (core-id) steal order.

    All cores select on the round-start snapshot; steals then execute
    atomically in ascending core-id order. Stale selections make
    re-check failures possible.
    """

    fresh_snapshots = False

    def participant_order(self, round_index: int,
                          cids: Sequence[int]) -> list[int]:
        return list(cids)


class SeededInterleaving(Interleaving):
    """Concurrent regime with seeded-random steal ordering.

    A cheap randomised adversary: different seeds explore different race
    outcomes while staying reproducible. Used by the simulator's default
    configuration and by the randomised verification campaigns.
    """

    fresh_snapshots = False

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self.seed = seed

    def participant_order(self, round_index: int,
                          cids: Sequence[int]) -> list[int]:
        order = list(cids)
        self._rng.shuffle(order)
        return order

    def steal_order(self, round_index: int,
                    thief_cids: Sequence[int]) -> list[int]:
        order = list(thief_cids)
        self._rng.shuffle(order)
        return order


class AdversarialInterleaving(Interleaving):
    """Concurrent regime with an explicitly chosen steal permutation.

    The model checker instantiates one of these per branch when it
    quantifies over all racing outcomes: for each round it enumerates
    every permutation of the steal intents and explores each resulting
    successor state.
    """

    fresh_snapshots = False

    def __init__(self, order: Sequence[int]) -> None:
        """Args:
            order: the exact steal order; any intent whose thief is not
                listed is appended in core-id order (permits partial
                specifications).
        """
        if len(set(order)) != len(order):
            raise ConfigurationError(f"duplicate cid in order {order!r}")
        self._order = list(order)

    def participant_order(self, round_index: int,
                          cids: Sequence[int]) -> list[int]:
        listed = [cid for cid in self._order if cid in cids]
        rest = [cid for cid in cids if cid not in self._order]
        return listed + rest

    def steal_order(self, round_index: int,
                    thief_cids: Sequence[int]) -> list[int]:
        return self.participant_order(round_index, thief_cids)


class OverlappedInterleaving(Interleaving):
    """Concurrent regime where steal critical sections overlap in time.

    Each steal is split into micro-operations — acquire both locks,
    migrate, release — and a seeded scheduler interleaves the racing
    attempts at micro-op granularity. A try-lock that finds a runqueue
    locked by a concurrent steal fails the whole attempt (``LOCK_BUSY``),
    modelling the paper's refusal to wait on locks: "locking the runqueue
    of the third core prevents that core from scheduling work".

    The balancer detects this mode via ``overlapped`` and routes steal
    execution through its micro-op engine.
    """

    fresh_snapshots = False
    overlapped = True

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.seed = seed

    def participant_order(self, round_index: int,
                          cids: Sequence[int]) -> list[int]:
        order = list(cids)
        self._rng.shuffle(order)
        return order

    def schedule_micro_ops(self, round_index: int,
                           thief_cids: Sequence[int]) -> list[int]:
        """Produce the micro-op schedule: a sequence of thief ids.

        Each occurrence of a thief id advances that thief's steal by one
        micro-op. Every thief appears exactly three times (lock, migrate,
        unlock); the relative order of occurrences is the interleaving.
        """
        schedule = [cid for cid in thief_cids for _ in range(3)]
        self._rng.shuffle(schedule)
        return schedule


class PipelinedInterleaving(Interleaving):
    """The fully general op-level adversary: selections interleave with
    steals.

    The two named regimes are the extremes of a spectrum: sequential
    (each core's select is immediately followed by its steal) and
    concurrent (all selects strictly before all steals). The model of
    Section 3.1 allows anything in between — a core may run its lock-free
    selection *while* another core's steal is mutating runqueues. This
    interleaving exposes that spectrum: an explicit (or seeded-random)
    schedule of ``("select", cid)`` / ``("steal", cid)`` operations, each
    select reading the machine at its own point in time.

    Invariant: a core's select precedes its steal. The balancer validates
    and auto-completes partial schedules.
    """

    fresh_snapshots = False
    pipelined = True

    def __init__(self, schedule: Sequence[tuple[str, int]] | None = None,
                 seed: int | None = None) -> None:
        """Args:
            schedule: explicit op sequence; ops for unlisted cores are
                appended (select then steal, core order).
            seed: when no explicit schedule is given, a random valid
                schedule is drawn per round from this seed.
        """
        if schedule is not None:
            for op, _ in schedule:
                if op not in ("select", "steal"):
                    raise ConfigurationError(f"unknown pipeline op {op!r}")
            for cid in {cid for _, cid in schedule}:
                ops = [op for op, c in schedule if c == cid]
                if ops.count("select") > 1 or ops.count("steal") > 1:
                    raise ConfigurationError(
                        f"core {cid} appears twice for the same op"
                    )
                if ops == ["steal"]:
                    continue  # select will be auto-prepended
                if ops and ops[0] != "select":
                    raise ConfigurationError(
                        f"core {cid}: steal scheduled before select"
                    )
        self._schedule = list(schedule) if schedule is not None else None
        self._rng = random.Random(seed if seed is not None else 0)

    def participant_order(self, round_index: int,
                          cids: Sequence[int]) -> list[int]:
        return list(cids)

    def op_schedule(self, round_index: int,
                    cids: Sequence[int]) -> list[tuple[str, int]]:
        """The complete, valid op sequence for this round."""
        if self._schedule is not None:
            schedule = list(self._schedule)
            listed = {cid for _, cid in schedule}
            # Auto-complete: prepend missing selects, append missing steals.
            for cid in cids:
                if cid not in listed:
                    schedule.append(("select", cid))
                    schedule.append(("steal", cid))
                else:
                    ops = [op for op, c in schedule if c == cid]
                    if "select" not in ops:
                        schedule.insert(0, ("select", cid))
                    if "steal" not in ops:
                        schedule.append(("steal", cid))
            return [
                (op, cid) for op, cid in schedule if cid in cids
            ]
        ops = [("select", cid) for cid in cids]
        ops += [("steal", cid) for cid in cids]
        while True:
            self._rng.shuffle(ops)
            positions = {("select", c): i for i, (o, c) in enumerate(ops)
                         if o == "select"}
            valid = all(
                positions[("select", c)] < i
                for i, (o, c) in enumerate(ops) if o == "steal"
            )
            if valid:
                return ops


def all_adversarial_orders(thief_cids: Sequence[int],
                           limit: int | None = None) -> list["AdversarialInterleaving"]:
    """Every steal-order adversary over ``thief_cids``.

    Used by the exhaustive model checker; ``limit`` caps the number of
    permutations for larger scopes (the checker reports when it truncates,
    so a silent cap never masquerades as full coverage).
    """
    import itertools

    orders = []
    for i, perm in enumerate(itertools.permutations(thief_cids)):
        if limit is not None and i >= limit:
            break
        orders.append(AdversarialInterleaving(perm))
    return orders

"""Simulation substrate: virtual time, try-locks, interleavings, and the
discrete-event multicore engine."""

from repro.sim.clock import VirtualClock
from repro.sim.interleave import (
    AdversarialInterleaving,
    ConcurrentInterleaving,
    Interleaving,
    OverlappedInterleaving,
    PipelinedInterleaving,
    RotatingSequentialInterleaving,
    SeededInterleaving,
    SequentialInterleaving,
    all_adversarial_orders,
)
from repro.sim.locks import LockManager, LockStats, TryLock

__all__ = [
    "VirtualClock",
    "AdversarialInterleaving",
    "ConcurrentInterleaving",
    "Interleaving",
    "OverlappedInterleaving",
    "PipelinedInterleaving",
    "RotatingSequentialInterleaving",
    "SeededInterleaving",
    "SequentialInterleaving",
    "all_adversarial_orders",
    "LockManager",
    "LockStats",
    "TryLock",
]

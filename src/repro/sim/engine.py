"""The discrete-event multicore simulator.

Executes the paper's scheduler model in virtual time: each tick every
core runs its current task for one time unit; every ``balance_interval``
ticks a load-balancing round fires on all cores (CFS's "every 4ms");
tasks finish, block, wake and migrate under the control of a
:class:`~repro.workloads.base.Workload`.

The engine is deliberately agnostic about *which* balancer runs — the
verified three-step :class:`~repro.core.balancer.LoadBalancer`, the
hierarchical variant, the CFS-like baseline with the wasted-cores
pathology, or the idealised global queue. Anything exposing
``run_round()`` plugs in, which is how the motivation experiments (E7)
compare them under identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.errors import ConfigurationError
from repro.core.machine import Machine
from repro.core.task import Task
from repro.metrics.collectors import MetricsCollector
from repro.sim.clock import VirtualClock
from repro.topology.cache import CacheModel


@runtime_checkable
class Balancer(Protocol):
    """Anything that can run one load-balancing round."""

    def run_round(self) -> object:
        """Execute one balancing round against the machine."""
        ...


@dataclass
class SimConfig:
    """Simulator knobs.

    Attributes:
        balance_interval: ticks between load-balancing rounds (the
            model's 4ms analogue).
        timeslice: ticks a task may run uninterrupted while others wait
            in the runqueue; round-robin preemption fires after that. In
            ``fair`` mode it doubles as the preemption granularity in
            nice-0 vruntime units.
        max_ticks: default stopping bound for :meth:`Simulation.run`.
        local_scheduler: per-core dispatch discipline — ``"rr"`` (FIFO +
            round-robin timeslices, the model's default) or ``"fair"``
            (CFS-style: pick the queued task with the smallest virtual
            runtime; vruntime advances inversely to task weight, so CPU
            shares converge to weight proportions — the §1 "fair between
            threads" property).
    """

    balance_interval: int = 4
    timeslice: int = 2
    max_ticks: int = 100_000
    local_scheduler: str = "rr"

    def __post_init__(self) -> None:
        if self.balance_interval <= 0:
            raise ConfigurationError("balance_interval must be > 0")
        if self.timeslice <= 0:
            raise ConfigurationError("timeslice must be > 0")
        if self.max_ticks <= 0:
            raise ConfigurationError("max_ticks must be > 0")
        if self.local_scheduler not in ("rr", "fair"):
            raise ConfigurationError(
                "local_scheduler must be 'rr' or 'fair',"
                f" got {self.local_scheduler!r}"
            )


@dataclass
class SimResult:
    """What a simulation run produced.

    Attributes:
        ticks: virtual time consumed.
        metrics: the :class:`~repro.metrics.collectors.MetricsCollector`.
        workload_done: whether the workload declared itself finished
            (False when the run stopped at ``max_ticks``).
    """

    ticks: int
    metrics: MetricsCollector
    workload_done: bool


class Simulation:
    """Drives a machine + balancer + workload through virtual time.

    Attributes:
        machine: the simulated multicore machine.
        balancer: the balancing strategy under test.
        workload: the workload generating and consuming tasks; ``None``
            runs pure balancing studies on a static task population.
        cache_model: optional migration-penalty model; when present,
            tasks pay warm-up ticks after running on a new core.
        metrics: metrics collector (shared with the caller).
        clock: the virtual clock.
    """

    def __init__(self, machine: Machine, balancer: Balancer,
                 workload: "WorkloadLike | None" = None,
                 cache_model: CacheModel | None = None,
                 config: SimConfig | None = None,
                 metrics: MetricsCollector | None = None,
                 latency_tracker: "LatencyTrackerLike | None" = None) -> None:
        self.machine = machine
        self.balancer = balancer
        self.workload = workload
        self.cache_model = cache_model
        self.config = config or SimConfig()
        self.metrics = metrics or MetricsCollector()
        self.latency = latency_tracker
        self.clock = VirtualClock(
            balance_interval=self.config.balance_interval
        )
        self._slice_used: dict[int, int] = {c.cid: 0 for c in machine.cores}
        self._warmup_left: dict[int, int] = {}
        self._last_ran_core: dict[int, int] = {}
        self._vruntime: dict[int, float] = {}
        if self.workload is not None:
            self.workload.attach(self)

    # ------------------------------------------------------------------
    # placement helper shared with workloads
    # ------------------------------------------------------------------

    def place(self, task: Task, cid: int) -> None:
        """Enqueue ``task`` on core ``cid``, applying cache penalties."""
        if self.config.local_scheduler == "fair":
            # New arrivals start at the core's current minimum vruntime:
            # they neither jump the queue nor wait out everyone's history.
            floor = self._core_min_vruntime(cid)
            self._vruntime[task.tid] = max(
                self._vruntime.get(task.tid, 0.0), floor
            )
        self.machine.place_task(task, cid)
        if self.latency is not None:
            self.latency.on_enqueued(task.tid, self.clock.now)

    def _core_min_vruntime(self, cid: int) -> float:
        core = self.machine.core(cid)
        candidates = [
            self._vruntime.get(t.tid, 0.0) for t in core.runqueue
        ]
        if core.current is not None:
            candidates.append(self._vruntime.get(core.current.tid, 0.0))
        return min(candidates, default=0.0)

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance the simulation by one time unit."""
        if self.workload is not None:
            self.workload.on_tick(self)

        self._dispatch()
        self._execute()
        self._preempt()

        self.clock.advance(1)
        if self.clock.balance_due():
            self.balancer.run_round()
            self.clock.mark_balanced()
            self._dispatch()

        self.metrics.on_tick(self.machine)

    def _dispatch(self) -> None:
        fair = self.config.local_scheduler == "fair"
        for core in self.machine.cores:
            if core.current is not None or core.runqueue.size == 0:
                continue
            if fair:
                chosen = min(
                    core.runqueue,
                    key=lambda t: (self._vruntime.get(t.tid, 0.0), t.tid),
                )
                if core.runqueue.peek() is not chosen:
                    core.runqueue.remove(chosen)
                    core.runqueue.push_front(chosen)
            task = core.pick_next()
            assert task is not None
            self._slice_used[core.cid] = 0
            if self.latency is not None:
                self.latency.on_dispatched(task.tid, self.clock.now)
            if self.cache_model is not None:
                last = self._last_ran_core.get(task.tid)
                penalty = self.cache_model.penalty(last, core.cid)
                if penalty > 0:
                    self._warmup_left[task.tid] = penalty

    def _execute(self) -> None:
        for core in self.machine.cores:
            task = core.current
            if task is None:
                continue
            self._last_ran_core[task.tid] = core.cid
            warmup = self._warmup_left.get(task.tid, 0)
            if warmup > 0:
                self._warmup_left[task.tid] = warmup - 1
                self.metrics.on_warmup(1)
                continue
            consumed = task.run_for(1)
            self.metrics.on_work(consumed)
            self._slice_used[core.cid] += 1
            if self.config.local_scheduler == "fair":
                from repro.core.task import NICE_0_WEIGHT

                self._vruntime[task.tid] = (
                    self._vruntime.get(task.tid, 0.0)
                    + NICE_0_WEIGHT / task.weight
                )
            if task.finished:
                core.finish_current()
                self._slice_used[core.cid] = 0
                self.metrics.on_task_finished()
                if self.workload is not None:
                    self.workload.on_task_finished(self, task, core.cid)

    def _preempt(self) -> None:
        fair = self.config.local_scheduler == "fair"
        for core in self.machine.cores:
            if core.current is None or core.runqueue.size == 0:
                continue
            if fair:
                current_vr = self._vruntime.get(core.current.tid, 0.0)
                min_queued = min(
                    self._vruntime.get(t.tid, 0.0) for t in core.runqueue
                )
                should_preempt = (
                    current_vr >= min_queued + self.config.timeslice
                )
            else:
                should_preempt = (
                    self._slice_used[core.cid] >= self.config.timeslice
                )
            if should_preempt:
                preempted = core.current
                core.preempt()
                self._slice_used[core.cid] = 0
                if self.latency is not None and preempted is not None:
                    self.latency.on_enqueued(preempted.tid, self.clock.now)

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------

    def run(self, max_ticks: int | None = None) -> SimResult:
        """Run until the workload finishes or ``max_ticks`` elapse.

        Args:
            max_ticks: overrides the config bound for this run.

        Returns:
            A :class:`SimResult` with the collected metrics.
        """
        bound = max_ticks if max_ticks is not None else self.config.max_ticks
        done = False
        for _ in range(bound):
            if self.workload is not None and self.workload.finished(self):
                done = True
                break
            self.tick()
        else:
            done = (
                self.workload.finished(self)
                if self.workload is not None else False
            )
        return SimResult(
            ticks=self.clock.now,
            metrics=self.metrics,
            workload_done=done,
        )


@runtime_checkable
class LatencyTrackerLike(Protocol):
    """Structural interface for scheduling-latency observers."""

    def on_enqueued(self, tid: int, now: int) -> None:
        """A task became ready at tick ``now``."""
        ...

    def on_dispatched(self, tid: int, now: int) -> None:
        """A task started running at tick ``now``."""
        ...


@runtime_checkable
class WorkloadLike(Protocol):
    """Structural interface the engine expects of workloads."""

    def attach(self, sim: Simulation) -> None:
        """Create initial tasks and place them."""
        ...

    def on_tick(self, sim: Simulation) -> None:
        """Inject arrivals/wakeups at the start of a tick."""
        ...

    def on_task_finished(self, sim: Simulation, task: Task,
                         cid: int) -> None:
        """React to a task completing its current work."""
        ...

    def finished(self, sim: Simulation) -> bool:
        """Whether the workload is complete."""
        ...

"""Lossless JSON round-trip for requests and results.

Every dataclass a :class:`~repro.api.result.VerificationResult` carries
— the request, the §4 certificate with its obligation results and
counterexamples, the model checker's analysis and lasso, zoo matrices,
campaign reports — encodes to plain JSON and decodes back to an *equal*
object. Two properties make the round trip exact:

* **Tuples are tagged.** JSON has no tuple type, and counterexample
  payloads mix tuples (load states, lasso cycles) with lists and dicts.
  :func:`encode_value` wraps tuples as ``{"__tuple__": [...]}`` (and
  escapes the rare dict that uses that key itself), so decoding restores
  the original Python types, not a list-shaped approximation.
* **Serialisation is canonical.** :func:`dumps_result` sorts keys and
  fixes separators, so ``dumps(loads(text)) == text`` byte for byte —
  the round-trip law the test suite asserts.

Floats survive unchanged because :mod:`json` emits ``repr``-exact
decimal forms (``float(repr(x)) == x`` for every finite float).

:func:`strip_result_timings` zeroes every wall-clock field, producing
the engine-independent normal form that equivalence tests compare.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.verify.campaign import CampaignReport
from repro.verify.model_checker import Lasso, WorkConservationAnalysis
from repro.verify.obligations import (
    Counterexample,
    Obligation,
    ProofReport,
    ProofResult,
    ProofStatus,
)
from repro.verify.report import ZooReport
from repro.verify.work_conservation import WorkConservationCertificate

from repro.api.request import (
    CampaignLimits,
    EngineSpec,
    PolicySpec,
    RequestError,
    VerificationRequest,
)
from repro.api.result import (
    ResultStats,
    StoreProvenance,
    Verdict,
    VerificationResult,
)

#: Format marker embedded in every serialised result.
RESULT_FORMAT = "repro.api.result/v1"


class CodecError(RequestError):
    """A document that cannot be decoded into a request or result."""


# ---------------------------------------------------------------------------
# tagged value encoding (tuples inside counterexample payloads)
# ---------------------------------------------------------------------------

_TUPLE_TAG = "__tuple__"
_DICT_TAG = "__dict__"


def encode_value(value: Any) -> Any:
    """Encode an arbitrary counterexample payload value as JSON-safe data."""
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(
                    f"cannot serialise dict key {key!r}: JSON object keys"
                    " must be strings"
                )
            encoded[key] = encode_value(item)
        if _TUPLE_TAG in encoded or _DICT_TAG in encoded:
            return {_DICT_TAG: encoded}
        return encoded
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CodecError(
        f"cannot serialise value of type {type(value).__name__}: {value!r}"
    )


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(decode_value(v) for v in value[_TUPLE_TAG])
        if set(value) == {_DICT_TAG}:
            return {k: decode_value(v) for k, v in value[_DICT_TAG].items()}
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def _check_keys(data: Mapping[str, Any], allowed: frozenset,
                what: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise CodecError(
            f"unknown {what} key(s) {', '.join(map(repr, unknown))};"
            f" expected a subset of: {', '.join(sorted(allowed))}"
        )


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------

_REQUEST_KEYS = frozenset({
    "kind", "policy", "scope", "max_orders", "choice_mode", "symmetric",
    "no_symmetry", "topology", "engine", "campaign",
})
_POLICY_KEYS = frozenset({"name", "margin", "seed"})
_SCOPE_KEYS = frozenset({"cores", "max_load"})
_ENGINE_KEYS = frozenset({"kind", "jobs", "workers", "endpoints",
                          "in_process", "mode", "partitions"})
_CAMPAIGN_KEYS = frozenset({"machines", "max_cores", "rounds", "seed"})


def request_to_dict(request: VerificationRequest) -> dict[str, Any]:
    """Encode a request, omitting fields left at their defaults (the
    same compact form spec files are written in)."""
    data: dict[str, Any] = {"kind": request.kind}
    if request.policy is not None:
        policy: dict[str, Any] = {"name": request.policy.name}
        if request.policy.margin != 2:
            policy["margin"] = request.policy.margin
        if request.policy.seed != 0:
            policy["seed"] = request.policy.seed
        data["policy"] = policy
    scope: dict[str, Any] = {}
    if request.cores is not None:
        scope["cores"] = request.cores
    if request.max_load is not None:
        scope["max_load"] = request.max_load
    if scope:
        data["scope"] = scope
    if request.max_orders is not None:
        data["max_orders"] = request.max_orders
    if request.choice_mode != "all":
        data["choice_mode"] = request.choice_mode
    if request.symmetric:
        data["symmetric"] = True
    if request.no_symmetry:
        data["no_symmetry"] = True
    if request.topology is not None:
        data["topology"] = request.topology
    engine = request.engine
    if engine != EngineSpec():
        encoded: dict[str, Any] = {"kind": engine.kind}
        if engine.kind == "pool":
            encoded["jobs"] = engine.jobs
        elif engine.kind == "distributed":
            if engine.workers is not None:
                encoded["workers"] = engine.workers
            if engine.endpoints:
                encoded["endpoints"] = list(engine.endpoints)
            if engine.in_process:
                encoded["in_process"] = True
            if engine.mode != "level-sync":
                encoded["mode"] = engine.mode
            if engine.partitions is not None:
                encoded["partitions"] = engine.partitions
        data["engine"] = encoded
    limits = request.campaign
    if limits is not None:
        campaign: dict[str, Any] = {}
        if limits.machines != 50:
            campaign["machines"] = limits.machines
        if limits.max_cores is not None:
            campaign["max_cores"] = limits.max_cores
        if limits.rounds != 30:
            campaign["rounds"] = limits.rounds
        if limits.seed != 0:
            campaign["seed"] = limits.seed
        data["campaign"] = campaign
    return data


def request_from_dict(data: Mapping[str, Any]) -> VerificationRequest:
    """Decode a request document (also the spec-file run format).

    Raises:
        CodecError: unknown keys or malformed component documents.
        RequestError: a well-formed document describing an invalid
            request (the request's own validation).
    """
    if not isinstance(data, Mapping):
        raise CodecError(
            f"a request must be a JSON object, got {type(data).__name__}"
        )
    _check_keys(data, _REQUEST_KEYS, "request")
    if "kind" not in data:
        raise CodecError("a request needs a 'kind'")

    policy = None
    if data.get("policy") is not None:
        raw = data["policy"]
        if isinstance(raw, str):  # shorthand: "policy": "balance_count"
            raw = {"name": raw}
        _check_keys(raw, _POLICY_KEYS, "policy")
        if "name" not in raw:
            raise CodecError("a policy needs a 'name'")
        policy = PolicySpec(name=raw["name"],
                            margin=raw.get("margin", 2),
                            seed=raw.get("seed", 0))

    scope = data.get("scope", {})
    _check_keys(scope, _SCOPE_KEYS, "scope")

    engine = EngineSpec()
    if data.get("engine") is not None:
        raw = data["engine"]
        _check_keys(raw, _ENGINE_KEYS, "engine")
        engine = EngineSpec(
            kind=raw.get("kind", "serial"),
            jobs=raw.get("jobs", 1),
            workers=raw.get("workers"),
            endpoints=tuple(raw.get("endpoints", ())),
            in_process=raw.get("in_process", False),
            mode=raw.get("mode", "level-sync"),
            partitions=raw.get("partitions"),
        )

    campaign = None
    if data.get("campaign") is not None:
        raw = data["campaign"]
        _check_keys(raw, _CAMPAIGN_KEYS, "campaign")
        campaign = CampaignLimits(
            machines=raw.get("machines", 50),
            max_cores=raw.get("max_cores"),
            rounds=raw.get("rounds", 30),
            seed=raw.get("seed", 0),
        )

    return VerificationRequest(
        kind=data["kind"],
        policy=policy,
        cores=scope.get("cores"),
        max_load=scope.get("max_load"),
        max_orders=data.get("max_orders"),
        choice_mode=data.get("choice_mode", "all"),
        symmetric=data.get("symmetric", False),
        no_symmetry=data.get("no_symmetry", False),
        topology=data.get("topology"),
        engine=engine,
        campaign=campaign,
    )


# ---------------------------------------------------------------------------
# verification payloads
# ---------------------------------------------------------------------------


def _counterexample_to_dict(cx: Counterexample) -> dict[str, Any]:
    return {
        "state": encode_value(tuple(cx.state)),
        "detail": cx.detail,
        "data": encode_value(dict(cx.data)),
    }


def _counterexample_from_dict(data: Mapping[str, Any]) -> Counterexample:
    return Counterexample(
        state=decode_value(data["state"]),
        detail=data["detail"],
        data=decode_value(data["data"]),
    )


def _proof_result_to_dict(result: ProofResult) -> dict[str, Any]:
    obligation = result.obligation
    return {
        "obligation": {
            "key": obligation.key,
            "title": obligation.title,
            "paper_ref": obligation.paper_ref,
            "statement": obligation.statement,
        },
        "policy_name": result.policy_name,
        "status": result.status.value,
        "scope": result.scope,
        "states_checked": result.states_checked,
        "counterexample": (
            _counterexample_to_dict(result.counterexample)
            if result.counterexample is not None else None
        ),
        "elapsed_s": result.elapsed_s,
    }


def _proof_result_from_dict(data: Mapping[str, Any]) -> ProofResult:
    raw = data["obligation"]
    return ProofResult(
        obligation=Obligation(key=raw["key"], title=raw["title"],
                              paper_ref=raw["paper_ref"],
                              statement=raw["statement"]),
        policy_name=data["policy_name"],
        status=ProofStatus(data["status"]),
        scope=data["scope"],
        states_checked=data["states_checked"],
        counterexample=(
            _counterexample_from_dict(data["counterexample"])
            if data["counterexample"] is not None else None
        ),
        elapsed_s=data["elapsed_s"],
    )


def _analysis_to_dict(analysis: WorkConservationAnalysis) -> dict[str, Any]:
    lasso = analysis.lasso
    return {
        "policy_name": analysis.policy_name,
        "scope": analysis.scope,
        "sequential": analysis.sequential,
        "violated": analysis.violated,
        "lasso": (
            {
                "prefix": [list(state) for state in lasso.prefix],
                "cycle": [list(state) for state in lasso.cycle],
            }
            if lasso is not None else None
        ),
        "worst_case_rounds": analysis.worst_case_rounds,
        "states_explored": analysis.states_explored,
        "bad_states": analysis.bad_states,
        "truncated": analysis.truncated,
        "elapsed_s": analysis.elapsed_s,
    }


def _analysis_from_dict(data: Mapping[str, Any]) -> WorkConservationAnalysis:
    lasso = None
    if data["lasso"] is not None:
        lasso = Lasso(
            prefix=tuple(tuple(state) for state in data["lasso"]["prefix"]),
            cycle=tuple(tuple(state) for state in data["lasso"]["cycle"]),
        )
    return WorkConservationAnalysis(
        policy_name=data["policy_name"],
        scope=data["scope"],
        sequential=data["sequential"],
        violated=data["violated"],
        lasso=lasso,
        worst_case_rounds=data["worst_case_rounds"],
        states_explored=data["states_explored"],
        bad_states=data["bad_states"],
        truncated=data["truncated"],
        elapsed_s=data["elapsed_s"],
    )


def _certificate_to_dict(cert: WorkConservationCertificate) -> dict[str, Any]:
    return {
        "policy_name": cert.policy_name,
        "report": {
            "policy_name": cert.report.policy_name,
            "results": [_proof_result_to_dict(r) for r in cert.report.results],
        },
        "analysis": _analysis_to_dict(cert.analysis),
        "potential_bound": cert.potential_bound,
        "min_decrease": cert.min_decrease,
        "proved": cert.proved,
    }


def _certificate_from_dict(
    data: Mapping[str, Any],
) -> WorkConservationCertificate:
    report = ProofReport(policy_name=data["report"]["policy_name"])
    for raw in data["report"]["results"]:
        report.add(_proof_result_from_dict(raw))
    return WorkConservationCertificate(
        policy_name=data["policy_name"],
        report=report,
        analysis=_analysis_from_dict(data["analysis"]),
        potential_bound=data["potential_bound"],
        min_decrease=data["min_decrease"],
        proved=data["proved"],
    )


def _zoo_to_dict(zoo: ZooReport) -> dict[str, Any]:
    return {
        "scope": zoo.scope,
        "certificates": [_certificate_to_dict(c) for c in zoo.certificates],
    }


def _zoo_from_dict(data: Mapping[str, Any]) -> ZooReport:
    return ZooReport(
        scope=data["scope"],
        certificates=[_certificate_from_dict(c)
                      for c in data["certificates"]],
    )


def _campaign_to_dict(report: CampaignReport) -> dict[str, Any]:
    return {
        "policy_name": report.policy_name,
        "machines": report.machines,
        "rounds": report.rounds,
        "steals": report.steals,
        "failures": report.failures,
        "violations": [_counterexample_to_dict(v)
                       for v in report.violations],
        "max_rounds_to_quiescence": report.max_rounds_to_quiescence,
    }


def _campaign_from_dict(data: Mapping[str, Any]) -> CampaignReport:
    return CampaignReport(
        policy_name=data["policy_name"],
        machines=data["machines"],
        rounds=data["rounds"],
        steals=data["steals"],
        failures=data["failures"],
        violations=[_counterexample_from_dict(v)
                    for v in data["violations"]],
        max_rounds_to_quiescence=data["max_rounds_to_quiescence"],
    )


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


def result_to_dict(result: VerificationResult) -> dict[str, Any]:
    """Encode a result as a JSON-safe document.

    Store provenance is encoded only when present, so documents from
    store-less runs are byte-identical to the pre-provenance format.
    """
    stats = result.stats
    data = {
        "format": RESULT_FORMAT,
        "request": request_to_dict(result.request),
        "verdict": result.verdict.value,
        "stats": {
            "states_explored": stats.states_explored,
            "bad_states": stats.bad_states,
            "policies": stats.policies,
            "policies_proved": stats.policies_proved,
            "machines": stats.machines,
            "rounds": stats.rounds,
            "steals": stats.steals,
            "failures": stats.failures,
            "violations": stats.violations,
        },
        "timings": dict(result.timings),
        "certificate": (
            _certificate_to_dict(result.certificate)
            if result.certificate is not None else None
        ),
        "analysis": (
            _analysis_to_dict(result.analysis)
            if result.analysis is not None else None
        ),
        "zoo": _zoo_to_dict(result.zoo) if result.zoo is not None else None,
        "campaign": (
            _campaign_to_dict(result.campaign)
            if result.campaign is not None else None
        ),
    }
    if result.provenance is not None:
        data["provenance"] = {
            "store_key": result.provenance.store_key,
            "shards": result.provenance.shards,
            "hit": result.provenance.hit,
        }
        # Encoded only when set, so documents from exact-hit and
        # store-less runs keep their established byte shape.
        if result.provenance.served_from is not None:
            data["provenance"]["served_from"] = \
                result.provenance.served_from
    return data


def result_from_dict(data: Mapping[str, Any]) -> VerificationResult:
    """Inverse of :func:`result_to_dict`."""
    if not isinstance(data, Mapping):
        raise CodecError(
            f"a result must be a JSON object, got {type(data).__name__}"
        )
    if data.get("format") != RESULT_FORMAT:
        raise CodecError(
            f"unsupported result format {data.get('format')!r};"
            f" expected {RESULT_FORMAT!r}"
        )
    stats = data["stats"]
    provenance = None
    if data.get("provenance") is not None:
        raw = data["provenance"]
        provenance = StoreProvenance(store_key=raw["store_key"],
                                     shards=raw["shards"],
                                     hit=raw["hit"],
                                     served_from=raw.get("served_from"))
    return VerificationResult(
        request=request_from_dict(data["request"]),
        verdict=Verdict(data["verdict"]),
        stats=ResultStats(
            states_explored=stats["states_explored"],
            bad_states=stats["bad_states"],
            policies=stats["policies"],
            policies_proved=stats["policies_proved"],
            machines=stats["machines"],
            rounds=stats["rounds"],
            steals=stats["steals"],
            failures=stats["failures"],
            violations=stats["violations"],
        ),
        timings=dict(data["timings"]),
        certificate=(
            _certificate_from_dict(data["certificate"])
            if data["certificate"] is not None else None
        ),
        analysis=(
            _analysis_from_dict(data["analysis"])
            if data["analysis"] is not None else None
        ),
        zoo=_zoo_from_dict(data["zoo"]) if data["zoo"] is not None else None,
        campaign=(
            _campaign_from_dict(data["campaign"])
            if data["campaign"] is not None else None
        ),
        provenance=provenance,
    )


def dumps_result(result: VerificationResult, *,
                 indent: int | None = None) -> str:
    """Serialise canonically: sorted keys, fixed separators.

    Canonical form is what makes the round trip *byte*-identical:
    ``dumps_result(loads_result(text)) == text`` for any ``text`` this
    function produced.
    """
    separators = (",", ":") if indent is None else (",", ": ")
    return json.dumps(result_to_dict(result), sort_keys=True,
                      indent=indent, separators=separators)


def loads_result(text: str) -> VerificationResult:
    """Parse a serialised result.

    Raises:
        CodecError: malformed JSON or an unsupported document.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"not valid JSON: {exc}") from exc
    return result_from_dict(data)


def strip_result_timings(result: VerificationResult) -> VerificationResult:
    """The engine-independent normal form: every timing zeroed.

    Wall-clock measurements are the only fields of a result that depend
    on which engine ran it (and on machine load); with them zeroed, two
    results of the same request are equal iff the engines agreed on
    everything that matters. Implemented through the codec so a new
    timed field cannot be forgotten here without also breaking the
    round-trip tests.
    """
    data = result_to_dict(result)

    def scrub(node: Any) -> Any:
        if isinstance(node, dict):
            return {
                key: (0.0 if key == "elapsed_s" else scrub(value))
                for key, value in node.items()
            }
        if isinstance(node, list):
            return [scrub(item) for item in node]
        return node

    scrubbed = scrub(data)
    scrubbed["timings"] = {key: 0.0 for key in scrubbed["timings"]}
    # Provenance is session metadata (hit/miss depends on store state,
    # not on the request), so the normal form drops it too.
    scrubbed.pop("provenance", None)
    return result_from_dict(scrubbed)

"""Engine adapters: one protocol over serial, pool, and distributed backends.

The verification stack grew three execution backends — the serial
checkers, the :mod:`multiprocessing` pool of
:mod:`repro.verify.parallel`, and the coordinator/worker dispatch of
:mod:`repro.verify.distributed` — with the guarantee that all three
produce byte-identical verdicts. This module makes that guarantee a
*type*: :class:`Engine` is the protocol every backend implements, and
callers (the :class:`~repro.api.session.Session`, primarily) pick a
backend by constructing a different adapter — never by importing
``parallel``/``distributed`` internals.

Adding a future backend (async hash-partitioned exploration, an
authenticated transport) means writing one new ``Engine``
implementation; every entry point — CLI, spec files, programmatic
callers — picks it up through :func:`create_engine` without a new flag
plumb-through.

Engines are context managers: ``__enter__`` acquires whatever the
backend needs (nothing, a pool per call, a worker fleet), ``__exit__``
releases it. The :class:`DistributedEngine` wraps every
:class:`~repro.core.errors.VerificationError` in an
:class:`EngineError` prefixed ``"distributed run failed: "`` — the
exact failure surface the CLI has always presented.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - hints only; imported lazily at runtime
    from repro.verify.distributed import Coordinator, LocalWorkerPool

from repro.core.errors import VerificationError
from repro.core.policy import Policy
from repro.obs.trace import TRACER
from repro.topology.numa import NumaTopology
from repro.verify.campaign import CampaignConfig, CampaignReport, run_campaign
from repro.verify.enumeration import StateScope
from repro.verify.hierarchical import HierarchySpec, build_checker
from repro.verify.model_checker import WorkConservationAnalysis
from repro.verify.symmetry import SymmetryGroup
from repro.verify.transition import DEFAULT_MAX_ORDERS
from repro.verify.work_conservation import (
    WorkConservationCertificate,
    prove_work_conserving,
)

from repro.api.request import EngineSpec, RequestError

#: ``on_level(level, states_expanded, next_frontier)`` progress hook.
LevelCallback = Callable[[int, int, int], None]

#: ``on_machine(machines_done, violations_so_far)`` campaign hook.
MachineCallback = Callable[[int, int], None]

#: ``on_reassign(task_index, lost_worker_name)`` dispatch hook.
ReassignCallback = Callable[[int, str], None]

#: ``on_expand(states_explored_so_far)`` cumulative progress hook.
ExpandCallback = Callable[[int], None]

#: ``on_partition_split(partition, source, target, pending)`` steal hook.
SplitCallback = Callable[[int, str, str, int], None]


class EngineError(VerificationError):
    """A backend failed to execute a request (transport loss, spawn
    failure, ...) — as opposed to the request being refuted."""


@runtime_checkable
class Engine(Protocol):
    """What a verification backend must provide.

    All three methods mirror the serial entry points exactly —
    identical parameters, identical result types — because the
    engine-equivalence guarantee (same request, same verdict, any
    backend) is only meaningful if the surface is shared. Progress
    callbacks are optional observers; an engine that cannot emit a
    given signal ignores the callback.
    """

    def describe(self) -> str:
        """One-line engine description for events and reports."""
        ...

    def __enter__(self) -> "Engine":
        ...

    def __exit__(self, *exc_info: object) -> None:
        ...

    def prove(self, policy: Policy, scope: StateScope, *,
              choice_mode: str = "all",
              max_orders: int = DEFAULT_MAX_ORDERS,
              symmetric: bool = False,
              symmetry: SymmetryGroup | None = None,
              topology: NumaTopology | None = None,
              on_level: LevelCallback | None = None,
              ) -> WorkConservationCertificate:
        """Run the full §4 pipeline for one policy."""
        ...

    def analyze(self, policy: Policy | None, scope: StateScope, *,
                choice_mode: str = "all",
                max_orders: int = DEFAULT_MAX_ORDERS,
                symmetric: bool = False,
                sequential: bool = False,
                symmetry: SymmetryGroup | None = None,
                topology: NumaTopology | None = None,
                hierarchy: HierarchySpec | None = None,
                on_level: LevelCallback | None = None,
                ) -> WorkConservationAnalysis:
        """Model-check work conservation only (the ``hunt`` path)."""
        ...

    def run_campaign(self, policy_factory: Callable[[], Policy],
                     config: CampaignConfig, *,
                     on_machine: MachineCallback | None = None,
                     ) -> CampaignReport:
        """Run a randomised fuzzing campaign."""
        ...


class SerialEngine:
    """The unsharded reference path, in this process.

    ``prove`` has no level structure (the serial closure is a DFS), so
    ``on_level`` is ignored there; ``analyze`` reports exploration
    progress through the checker's per-expansion hook instead, which
    the session throttles into events.
    """

    def describe(self) -> str:
        return "serial"

    def __enter__(self) -> "SerialEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def prove(self, policy, scope, *, choice_mode="all",
              max_orders=DEFAULT_MAX_ORDERS, symmetric=False,
              symmetry=None, topology=None, on_level=None,
              ) -> WorkConservationCertificate:
        return prove_work_conserving(
            policy, scope, choice_mode=choice_mode, max_orders=max_orders,
            symmetric=symmetric, symmetry=symmetry, topology=topology,
        )

    def analyze(self, policy, scope, *, choice_mode="all",
                max_orders=DEFAULT_MAX_ORDERS, symmetric=False,
                sequential=False, symmetry=None, topology=None,
                hierarchy=None, on_level=None,
                on_expand: Callable[[int], None] | None = None,
                ) -> WorkConservationAnalysis:
        checker = build_checker(
            policy, choice_mode=choice_mode, max_orders=max_orders,
            symmetric=symmetric, symmetry=symmetry, topology=topology,
            hierarchy=hierarchy,
        )
        return checker.analyze(scope, sequential=sequential,
                               on_expand=on_expand)

    def run_campaign(self, policy_factory, config, *,
                     on_machine=None) -> CampaignReport:
        return run_campaign(policy_factory, config, on_machine=on_machine)


class PoolEngine:
    """The ``--jobs N`` multiprocessing engine.

    A thin adapter over :mod:`repro.verify.parallel`; each call owns its
    pool (the drivers create and tear one down per sweep), so enter/exit
    hold no state.
    """

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs

    def describe(self) -> str:
        return f"pool[jobs={self.jobs}]"

    def __enter__(self) -> "PoolEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def prove(self, policy, scope, *, choice_mode="all",
              max_orders=DEFAULT_MAX_ORDERS, symmetric=False,
              symmetry=None, topology=None, on_level=None,
              ) -> WorkConservationCertificate:
        from repro.verify.parallel import prove_work_conserving_parallel

        return prove_work_conserving_parallel(
            policy, scope, jobs=self.jobs, choice_mode=choice_mode,
            max_orders=max_orders, symmetric=symmetric, symmetry=symmetry,
            topology=topology, on_level=on_level,
        )

    def analyze(self, policy, scope, *, choice_mode="all",
                max_orders=DEFAULT_MAX_ORDERS, symmetric=False,
                sequential=False, symmetry=None, topology=None,
                hierarchy=None, on_level=None,
                ) -> WorkConservationAnalysis:
        from repro.verify.parallel import analyze_parallel

        return analyze_parallel(
            policy, scope, jobs=self.jobs, choice_mode=choice_mode,
            max_orders=max_orders, symmetric=symmetric,
            sequential=sequential, symmetry=symmetry, topology=topology,
            hierarchy=hierarchy, on_level=on_level,
        )

    def run_campaign(self, policy_factory, config, *,
                     on_machine=None) -> CampaignReport:
        from repro.verify.parallel import run_campaign_parallel

        return run_campaign_parallel(policy_factory, config,
                                     jobs=self.jobs)


class DistributedEngine:
    """The coordinator/worker engine behind ``--distributed``/``--workers``.

    ``__enter__`` acquires the worker fleet per the construction
    arguments — spawn ``workers`` localhost subprocesses (the reference
    TCP deployment), connect to ``endpoints``, or stand up ``workers``
    in-process transports (every frame still round-trips the wire
    encoding; the zero-setup deployment tests use) — and ``__exit__``
    releases it. A caller-owned :class:`~repro.verify.distributed.
    Coordinator` may be injected instead; it is then *not* closed on
    exit.

    Every :class:`~repro.core.errors.VerificationError` — spawn or
    connect failures, worker loss, unsound parameter combinations
    detected mid-dispatch — surfaces as :class:`EngineError` with the
    ``"distributed run failed: "`` prefix.
    """

    def __init__(self, workers: int | None = None,
                 endpoints: Sequence[str] = (),
                 in_process: bool = False,
                 coordinator: Coordinator | None = None,
                 mode: str = "level-sync",
                 partitions: int | None = None) -> None:
        self._workers = workers
        self._endpoints = tuple(endpoints)
        self._in_process = in_process
        self._coordinator: Coordinator | None = coordinator
        self._owned_pool: LocalWorkerPool | None = None
        self._owns_coordinator = coordinator is None
        #: ``"level-sync"`` (barriered BFS) or ``"async"`` (barrier-free
        #: hash-partitioned exploration); see repro.verify.distributed.
        self.mode = mode
        self.partitions = partitions
        #: forwarded to the coordinator once open (ShardReassigned events).
        self.on_reassign: ReassignCallback | None = None
        #: async-mode steal observer (PartitionSplit events).
        self.on_partition_split: SplitCallback | None = None

    def describe(self) -> str:
        suffix = ", async" if self.mode == "async" else ""
        if self._endpoints:
            return f"distributed[{','.join(self._endpoints)}{suffix}]"
        if self._in_process:
            return f"distributed[{self._workers} in-process workers{suffix}]"
        if self._workers is not None:
            return f"distributed[{self._workers} tcp workers{suffix}]"
        return f"distributed[injected coordinator{suffix}]"

    def __enter__(self) -> "DistributedEngine":
        if self._coordinator is not None:  # injected, or re-entered
            self._coordinator.on_reassign = self.on_reassign
            return self
        from repro.verify.distributed import (
            Coordinator,
            InProcessTransport,
            LocalWorkerPool,
            connect_workers,
        )

        try:
            with TRACER.span("engine.acquire", "engine",
                             engine=self.describe()):
                if self._endpoints:
                    self._coordinator = connect_workers(self._endpoints)
                elif self._in_process:
                    self._coordinator = Coordinator([
                        InProcessTransport(name=f"in-process-{i}")
                        for i in range(self._workers or 1)
                    ])
                else:
                    self._owned_pool = LocalWorkerPool(self._workers or 1)
                    self._coordinator = self._owned_pool.__enter__()
        except VerificationError as exc:
            self._close()
            raise EngineError(f"distributed run failed: {exc}") from exc
        self._coordinator.on_reassign = self.on_reassign
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._close()

    def _close(self) -> None:
        if not self._owns_coordinator:
            return
        if self._owned_pool is not None:
            pool, self._owned_pool = self._owned_pool, None
            self._coordinator = None
            pool.__exit__(None, None, None)
        elif self._coordinator is not None:
            coordinator, self._coordinator = self._coordinator, None
            coordinator.close()

    @property
    def coordinator(self) -> Coordinator:
        """The live coordinator; entering the engine first is the
        caller's job."""
        if self._coordinator is None:
            raise EngineError(
                "distributed engine is not open: use it as a context"
                " manager"
            )
        return self._coordinator

    def prove(self, policy, scope, *, choice_mode="all",
              max_orders=DEFAULT_MAX_ORDERS, symmetric=False,
              symmetry=None, topology=None, on_level=None,
              on_expand: ExpandCallback | None = None,
              ) -> WorkConservationCertificate:
        from repro.verify.distributed import prove_work_conserving_distributed

        try:
            return prove_work_conserving_distributed(
                policy, scope, self.coordinator, choice_mode=choice_mode,
                max_orders=max_orders, symmetric=symmetric,
                symmetry=symmetry, topology=topology,
                mode=self.mode, partitions=self.partitions,
                on_level=on_level, on_expand=on_expand,
                on_partition_split=self.on_partition_split,
            )
        except EngineError:
            raise
        except VerificationError as exc:
            raise EngineError(f"distributed run failed: {exc}") from exc

    def analyze(self, policy, scope, *, choice_mode="all",
                max_orders=DEFAULT_MAX_ORDERS, symmetric=False,
                sequential=False, symmetry=None, topology=None,
                hierarchy=None, on_level=None,
                on_expand: ExpandCallback | None = None,
                ) -> WorkConservationAnalysis:
        from repro.verify.distributed import analyze_distributed

        try:
            return analyze_distributed(
                policy, scope, self.coordinator, choice_mode=choice_mode,
                max_orders=max_orders, symmetric=symmetric,
                sequential=sequential, symmetry=symmetry,
                topology=topology, hierarchy=hierarchy,
                mode=self.mode, partitions=self.partitions,
                on_level=on_level, on_expand=on_expand,
                on_partition_split=self.on_partition_split,
            )
        except EngineError:
            raise
        except VerificationError as exc:
            raise EngineError(f"distributed run failed: {exc}") from exc

    def run_campaign(self, policy_factory, config, *,
                     on_machine=None) -> CampaignReport:
        from repro.verify.distributed import run_campaign_distributed

        try:
            return run_campaign_distributed(policy_factory, config,
                                            self.coordinator)
        except EngineError:
            raise
        except VerificationError as exc:
            raise EngineError(f"distributed run failed: {exc}") from exc


def create_engine(spec: EngineSpec) -> Engine:
    """Construct the engine an :class:`EngineSpec` describes."""
    if spec.kind == "serial":
        return SerialEngine()
    if spec.kind == "pool":
        if spec.jobs == 1:
            # One worker is the serial path; skip the pool machinery
            # exactly as the drivers themselves would.
            return SerialEngine()
        return PoolEngine(spec.jobs)
    if spec.kind == "distributed":
        return DistributedEngine(workers=spec.workers,
                                 endpoints=spec.endpoints,
                                 in_process=spec.in_process,
                                 mode=spec.mode,
                                 partitions=spec.partitions)
    raise RequestError(f"unknown engine kind {spec.kind!r}")

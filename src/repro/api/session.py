"""Sessions: run a request on an engine, observe progress, get a result.

A :class:`Session` is the one executor behind every entry point. It
resolves a :class:`~repro.api.request.VerificationRequest` into runtime
objects, acquires the requested engine, runs the request, and packages
the outcome as a typed :class:`~repro.api.result.VerificationResult` —
emitting structured :class:`ProgressEvent` values to subscribers along
the way.

Events are plain frozen dataclasses, not log lines: a caller can drive
a progress bar off ``LevelCompleted``, alert on ``ShardReassigned``,
or stream ``ViolationFound`` into an issue tracker. Guarantees:

* Every run starts with ``RequestStarted`` and ends with exactly one
  terminal event: ``RequestFinished`` (carrying the result) on success,
  ``RequestFailed`` (carrying the error, which then propagates to the
  caller) otherwise.
* Events are observational only — unsubscribing cannot change a
  verdict, and verdicts are byte-identical with zero subscribers.
* Ordering is per-run; ``ShardReassigned`` may arrive from a
  coordinator dispatch thread, so subscribers must be thread-safe when
  running distributed requests.

Usage::

    from repro.api import Session, VerificationRequest

    request = (VerificationRequest.builder("prove")
               .policy("balance_count").pool(jobs=4).build())
    session = Session(subscribers=[print])
    result = session.run(request)
    assert result.ok and result.certificate is not None
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.verify.campaign import CampaignReport
from repro.verify.obligations import Counterexample
from repro.verify.report import ZooReport, zoo_lineup
from repro.verify.work_conservation import WorkConservationCertificate

from repro.api.engine import DistributedEngine, Engine, create_engine
from repro.api.request import RequestError, VerificationRequest
from repro.api.result import ResultStats, Verdict, VerificationResult

#: How many serial-engine expansions between ``StatesExplored`` events.
DEFAULT_EXPAND_STRIDE = 1000


# ---------------------------------------------------------------------------
# progress events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProgressEvent:
    """Base class of everything a session emits."""


@dataclass(frozen=True)
class RequestStarted(ProgressEvent):
    """A run began; ``engine`` is the engine's one-line description."""

    request: VerificationRequest
    engine: str


@dataclass(frozen=True)
class PolicyStarted(ProgressEvent):
    """A zoo run reached policy ``index`` of ``total``."""

    policy: str
    index: int
    total: int


@dataclass(frozen=True)
class PolicyFinished(ProgressEvent):
    """A zoo run finished one policy's full pipeline."""

    policy: str
    index: int
    total: int
    proved: bool


@dataclass(frozen=True)
class LevelCompleted(ProgressEvent):
    """The closure exploration finished one BFS level (pool and
    distributed engines; the serial closure is depth-first and reports
    :class:`StatesExplored` instead)."""

    level: int
    states_expanded: int
    frontier: int


@dataclass(frozen=True)
class StatesExplored(ProgressEvent):
    """Serial exploration progress, throttled to the session's stride."""

    states: int


@dataclass(frozen=True)
class ShardReassigned(ProgressEvent):
    """A distributed worker was lost and its in-flight task requeued.

    May be emitted from a coordinator dispatch thread.
    """

    task_index: int
    worker: str


@dataclass(frozen=True)
class MachineChecked(ProgressEvent):
    """A (serial) campaign finished fuzzing one machine."""

    machines: int
    violations: int


@dataclass(frozen=True)
class ViolationFound(ProgressEvent):
    """A refuted obligation, lasso, or campaign violation.

    Emitted once per counterexample when the run's results are
    assembled (engines running in worker processes cannot stream
    counterexamples as they are found).
    """

    obligation: str
    counterexample: Counterexample


@dataclass(frozen=True)
class RequestFinished(ProgressEvent):
    """The run completed; ``result`` is what :meth:`Session.run`
    returns."""

    result: VerificationResult


@dataclass(frozen=True)
class RequestFailed(ProgressEvent):
    """The run aborted — engine failure, checker refusal, or any other
    exception (which propagates to the :meth:`Session.run` caller after
    this event)."""

    request: VerificationRequest
    error: str


Subscriber = Callable[[ProgressEvent], None]


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------


class Session:
    """Runs verification requests and reports structured progress.

    Args:
        subscribers: initial progress subscribers (more via
            :meth:`subscribe`). A subscriber that raises aborts the
            run — observers are trusted code.
        engine: inject a pre-built engine (overriding each request's
            ``engine`` spec) — how tests drive an in-process
            coordinator through the public API. The session still
            enters/exits it per run.
        expand_stride: emit :class:`StatesExplored` every this many
            serial expansions.
    """

    def __init__(self, subscribers: Iterable[Subscriber] = (),
                 engine: Engine | None = None,
                 expand_stride: int = DEFAULT_EXPAND_STRIDE) -> None:
        self._subscribers: list[Subscriber] = list(subscribers)
        self._engine = engine
        if expand_stride < 1:
            raise RequestError(
                f"expand_stride must be >= 1, got {expand_stride}"
            )
        self.expand_stride = expand_stride

    def subscribe(self, subscriber: Subscriber) -> None:
        """Add a progress subscriber."""
        self._subscribers.append(subscriber)

    # -- event plumbing -------------------------------------------------

    def _emit(self, event: ProgressEvent) -> None:
        for subscriber in self._subscribers:
            subscriber(event)

    def _on_level(self, level: int, expanded: int, frontier: int) -> None:
        self._emit(LevelCompleted(level=level, states_expanded=expanded,
                                  frontier=frontier))

    def _on_expand(self, states: int) -> None:
        if states % self.expand_stride == 0:
            self._emit(StatesExplored(states=states))

    def _on_machine(self, machines: int, violations: int) -> None:
        self._emit(MachineChecked(machines=machines, violations=violations))

    def _on_reassign(self, task_index: int, worker: str) -> None:
        self._emit(ShardReassigned(task_index=task_index, worker=worker))

    # -- running --------------------------------------------------------

    def run(self, request: VerificationRequest) -> VerificationResult:
        """Execute ``request`` and return its typed result.

        Raises:
            RequestError: the request is invalid (also raised eagerly
                by the request's own constructor).
            EngineError: the backend failed (worker loss, spawn
                failure, ...).
            VerificationError: an unsound parameter combination the
                checkers refuse (e.g. a non-equivariant choice under a
                symmetry quotient).
        """
        engine = self._engine if self._engine is not None \
            else create_engine(request.engine)
        if isinstance(engine, DistributedEngine):
            # Entering the engine copies the hook onto the coordinator.
            engine.on_reassign = self._on_reassign
        self._emit(RequestStarted(request=request,
                                  engine=engine.describe()))
        start = time.perf_counter()
        try:
            with engine:
                runner = {
                    "prove": self._run_prove,
                    "hunt": self._run_hunt,
                    "zoo": self._run_zoo,
                    "campaign": self._run_campaign,
                }[request.kind]
                result = runner(request, engine)
        except BaseException as exc:
            self._emit(RequestFailed(request=request, error=str(exc)))
            raise
        result = result.with_timings(
            {**result.timings, "total_s": time.perf_counter() - start}
        )
        self._emit_violations(result)
        self._emit(RequestFinished(result=result))
        return result

    def _emit_violations(self, result: VerificationResult) -> None:
        certificates: list[WorkConservationCertificate] = []
        if result.certificate is not None:
            certificates.append(result.certificate)
        if result.zoo is not None:
            certificates.extend(result.zoo.certificates)
        for cert in certificates:
            for proof in cert.report.refuted:
                if proof.counterexample is not None:
                    self._emit(ViolationFound(
                        obligation=proof.obligation.key,
                        counterexample=proof.counterexample,
                    ))
        if result.analysis is not None and result.analysis.violated:
            lasso_cx = result.analysis.to_proof_result().counterexample
            if lasso_cx is not None:
                self._emit(ViolationFound(obligation="work_conservation",
                                          counterexample=lasso_cx))
        if result.campaign is not None:
            for violation in result.campaign.violations:
                self._emit(ViolationFound(obligation="campaign",
                                          counterexample=violation))

    # -- per-kind runners ----------------------------------------------

    def _run_prove(self, request: VerificationRequest,
                   engine: Engine) -> VerificationResult:
        resolved = request.resolve()
        assert resolved.policy is not None  # guaranteed by request validation
        cert = engine.prove(
            resolved.policy, resolved.scope,
            choice_mode=request.choice_mode,
            max_orders=request.effective_max_orders,
            symmetric=request.symmetric,
            symmetry=resolved.symmetry,
            topology=resolved.topology,
            on_level=self._on_level,
        )
        return VerificationResult(
            request=request,
            verdict=Verdict.PROVED if cert.proved else Verdict.REFUTED,
            stats=ResultStats(
                states_explored=cert.analysis.states_explored,
                bad_states=cert.analysis.bad_states,
                violations=len(cert.report.refuted),
            ),
            timings={},
            certificate=cert,
        )

    def _run_hunt(self, request: VerificationRequest,
                  engine: Engine) -> VerificationResult:
        from repro.api.engine import SerialEngine

        resolved = request.resolve()
        if isinstance(engine, SerialEngine):
            # The serial closure is depth-first: exploration progress
            # comes from the checker's per-expansion hook, not levels.
            analysis = engine.analyze(
                resolved.policy, resolved.scope,
                choice_mode=request.choice_mode,
                max_orders=request.effective_max_orders,
                symmetric=request.symmetric,
                symmetry=resolved.symmetry,
                topology=resolved.topology,
                hierarchy=resolved.hierarchy,
                on_expand=self._on_expand,
            )
        else:
            analysis = engine.analyze(
                resolved.policy, resolved.scope,
                choice_mode=request.choice_mode,
                max_orders=request.effective_max_orders,
                symmetric=request.symmetric,
                symmetry=resolved.symmetry,
                topology=resolved.topology,
                hierarchy=resolved.hierarchy,
                on_level=self._on_level,
            )
        return VerificationResult(
            request=request,
            verdict=Verdict.VIOLATED if analysis.violated else Verdict.CLEAN,
            stats=ResultStats(
                states_explored=analysis.states_explored,
                bad_states=analysis.bad_states,
                violations=1 if analysis.violated else 0,
            ),
            timings={"explore_s": analysis.elapsed_s},
            analysis=analysis,
        )

    def _run_zoo(self, request: VerificationRequest,
                 engine: Engine) -> VerificationResult:
        resolved = request.resolve()
        policies = zoo_lineup(resolved.topology)
        certificates: list[WorkConservationCertificate] = []
        for index, policy in enumerate(policies):
            self._emit(PolicyStarted(policy=policy.name, index=index,
                                     total=len(policies)))
            cert = engine.prove(
                policy, resolved.scope,
                choice_mode=request.choice_mode,
                max_orders=request.effective_max_orders,
                symmetric=request.symmetric,
                symmetry=resolved.symmetry,
                topology=resolved.topology,
                on_level=self._on_level,
            )
            certificates.append(cert)
            self._emit(PolicyFinished(policy=policy.name, index=index,
                                      total=len(policies),
                                      proved=cert.proved))
        report = ZooReport(scope=resolved.scope.describe(),
                           certificates=certificates)
        proved = sum(1 for c in certificates if c.proved)
        return VerificationResult(
            request=request,
            verdict=(Verdict.PROVED if proved == len(certificates)
                     else Verdict.REFUTED),
            stats=ResultStats(
                policies=len(certificates),
                policies_proved=proved,
                violations=sum(len(c.report.refuted) for c in certificates),
            ),
            timings={},
            zoo=report,
        )

    def _run_campaign(self, request: VerificationRequest,
                      engine: Engine) -> VerificationResult:
        config = request.campaign_config()
        report: CampaignReport = engine.run_campaign(
            request.policy_factory(), config,
            on_machine=self._on_machine,
        )
        return VerificationResult(
            request=request,
            verdict=Verdict.CLEAN if report.clean else Verdict.VIOLATED,
            stats=ResultStats(
                machines=report.machines,
                rounds=report.rounds,
                steals=report.steals,
                failures=report.failures,
                violations=len(report.violations),
            ),
            timings={},
            campaign=report,
        )


def run_request(request: VerificationRequest,
                subscribers: Iterable[Subscriber] = (),
                ) -> VerificationResult:
    """One-shot convenience: run ``request`` on a fresh session."""
    return Session(subscribers=subscribers).run(request)

"""Sessions: run a request on an engine, observe progress, get a result.

A :class:`Session` is the one executor behind every entry point. It
resolves a :class:`~repro.api.request.VerificationRequest` into runtime
objects, acquires the requested engine, runs the request, and packages
the outcome as a typed :class:`~repro.api.result.VerificationResult` —
emitting structured :class:`ProgressEvent` values to subscribers along
the way.

Events are plain frozen dataclasses, not log lines: a caller can drive
a progress bar off ``LevelCompleted``, alert on ``ShardReassigned``,
or stream ``ViolationFound`` into an issue tracker. Guarantees:

* Every run starts with ``RequestStarted`` and ends with exactly one
  terminal event: ``RequestFinished`` (carrying the result) on success,
  ``RequestFailed`` (carrying the error, which then propagates to the
  caller) otherwise.
* Events are observational only — unsubscribing cannot change a
  verdict, and verdicts are byte-identical with zero subscribers.
* Ordering is per-run; ``ShardReassigned`` and ``PartitionSplit`` may
  arrive from a coordinator dispatch thread, so subscribers must be
  thread-safe when running distributed requests.

Usage::

    from repro.api import Session, VerificationRequest

    request = (VerificationRequest.builder("prove")
               .policy("balance_count").pool(jobs=4).build())
    session = Session(subscribers=[print])
    result = session.run(request)
    assert result.ok and result.certificate is not None

Callers that want to *consume* progress rather than observe it use the
streaming surface instead of subscribers: :meth:`Session.iter_events`
returns an :class:`EventStream` (a plain iterator driving the run on a
background thread, with the result available once exhausted),
:meth:`Session.run_streaming` is the generator form (``result = yield
from session.run_streaming(request)``), and :meth:`Session.aiter_events`
adapts the stream to ``async for``. All three yield exactly the events
a subscriber would see, in the same order.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    AsyncIterator,
    Callable,
    ContextManager,
    Generator,
    Iterable,
    Iterator,
)

from repro.obs.trace import TRACER
from repro.verify.campaign import CampaignReport
from repro.verify.obligations import Counterexample
from repro.verify.report import ZooReport, zoo_lineup, zoo_lineup_entries
from repro.verify.work_conservation import WorkConservationCertificate

from repro.api.engine import DistributedEngine, Engine, create_engine
from repro.api.request import RequestError, VerificationRequest
from repro.api.result import (
    StoreProvenance,
    VerificationResult,
    result_from_analysis,
    result_from_campaign,
    result_from_certificate,
    result_from_zoo,
)

if TYPE_CHECKING:  # pragma: no cover - hints only; imported lazily
    from repro.store.backends import ResultStore
    from repro.store.caching import CachingEngine

#: How many serial-engine expansions between ``StatesExplored`` events.
DEFAULT_EXPAND_STRIDE = 1000


# ---------------------------------------------------------------------------
# progress events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProgressEvent:
    """Base class of everything a session emits."""


@dataclass(frozen=True)
class RequestStarted(ProgressEvent):
    """A run began; ``engine`` is the engine's one-line description."""

    request: VerificationRequest
    engine: str


@dataclass(frozen=True)
class PolicyStarted(ProgressEvent):
    """A zoo run reached policy ``index`` of ``total``."""

    policy: str
    index: int
    total: int


@dataclass(frozen=True)
class PolicyFinished(ProgressEvent):
    """A zoo run finished one policy's full pipeline."""

    policy: str
    index: int
    total: int
    proved: bool


@dataclass(frozen=True)
class LevelCompleted(ProgressEvent):
    """The closure exploration finished one BFS level (pool and
    distributed engines; the serial closure is depth-first and reports
    :class:`StatesExplored` instead)."""

    level: int
    states_expanded: int
    frontier: int


@dataclass(frozen=True)
class StatesExplored(ProgressEvent):
    """Serial exploration progress, throttled to the session's stride."""

    states: int


@dataclass(frozen=True)
class ShardReassigned(ProgressEvent):
    """A distributed worker was lost and its in-flight task requeued.

    May be emitted from a coordinator dispatch thread.
    """

    task_index: int
    worker: str


@dataclass(frozen=True)
class PartitionSplit(ProgressEvent):
    """An async-mode partition moved between workers (work stealing).

    Emitted when the coordinator re-routes a partition from ``source``
    to ``target`` — because ``target`` went idle, or joined the fleet
    mid-run — carrying ``pending`` queued states with it. Like
    :class:`ShardReassigned`, may arrive from a coordinator dispatch
    thread.
    """

    partition: int
    source: str
    target: str
    pending: int


@dataclass(frozen=True)
class MachineChecked(ProgressEvent):
    """A (serial) campaign finished fuzzing one machine."""

    machines: int
    violations: int


@dataclass(frozen=True)
class ResultReused(ProgressEvent):
    """A stored result served in place of a fresh proof.

    Emitted by sessions running with a result store
    (:mod:`repro.store`): once per whole request served from the
    store, or once per zoo row when a zoo run is partially warm —
    dashboards and ``--progress`` can therefore distinguish cache
    hits from fresh exploration.

    Attributes:
        request: the request (or derived per-policy prove request of a
            zoo row) whose result was reused.
        key: the content address it was served from.
    """

    request: VerificationRequest
    key: str


@dataclass(frozen=True)
class ViolationFound(ProgressEvent):
    """A refuted obligation, lasso, or campaign violation.

    Emitted once per counterexample when the run's results are
    assembled (engines running in worker processes cannot stream
    counterexamples as they are found).
    """

    obligation: str
    counterexample: Counterexample


@dataclass(frozen=True)
class RequestFinished(ProgressEvent):
    """The run completed; ``result`` is what :meth:`Session.run`
    returns."""

    result: VerificationResult


@dataclass(frozen=True)
class RequestFailed(ProgressEvent):
    """The run aborted — engine failure, checker refusal, or any other
    exception (which propagates to the :meth:`Session.run` caller after
    this event)."""

    request: VerificationRequest
    error: str


Subscriber = Callable[[ProgressEvent], None]


# ---------------------------------------------------------------------------
# the session
# ---------------------------------------------------------------------------


class Session:
    """Runs verification requests and reports structured progress.

    Args:
        subscribers: initial progress subscribers (more via
            :meth:`subscribe`). A subscriber that raises aborts the
            run — observers are trusted code.
        engine: inject a pre-built engine (overriding each request's
            ``engine`` spec) — how tests drive an in-process
            coordinator through the public API. The session still
            enters/exits it per run.
        expand_stride: emit :class:`StatesExplored` every this many
            serial expansions.
        store: a :class:`~repro.store.backends.ResultStore`; when
            given, every run consults it before exploring anything and
            stores what it freshly proves, emitting
            :class:`ResultReused` for each hit. Zoo runs are cached at
            both granularities — the whole matrix, and one derived
            prove request per row, so a partially warm lineup only
            re-proves its misses.
        store_refresh: skip store lookups (but still store fresh
            results) — ``--store-refresh``.
        store_subsume: let a stored *proved* entry whose scope subsumes
            the request answer it (``--store-subsume``).
            Verdict-preserving but not byte-preserving — see
            :class:`~repro.store.caching.CachingEngine`.
    """

    def __init__(self, subscribers: Iterable[Subscriber] = (),
                 engine: Engine | None = None,
                 expand_stride: int = DEFAULT_EXPAND_STRIDE,
                 store: "ResultStore | None" = None,
                 store_refresh: bool = False,
                 store_subsume: bool = False) -> None:
        self._subscribers: list[Subscriber] = list(subscribers)
        self._engine = engine
        if expand_stride < 1:
            raise RequestError(
                f"expand_stride must be >= 1, got {expand_stride}"
            )
        self.expand_stride = expand_stride
        self._expand_seen = 0
        self._store = store
        self._store_refresh = store_refresh
        self._store_subsume = store_subsume

    def subscribe(self, subscriber: Subscriber) -> None:
        """Add a progress subscriber."""
        self._subscribers.append(subscriber)

    # -- event plumbing -------------------------------------------------

    def _emit(self, event: ProgressEvent) -> None:
        for subscriber in self._subscribers:
            subscriber(event)

    def _on_level(self, level: int, expanded: int, frontier: int) -> None:
        self._emit(LevelCompleted(level=level, states_expanded=expanded,
                                  frontier=frontier))

    def _on_expand(self, states: int) -> None:
        # Emit whenever the count crosses a stride boundary. The serial
        # checker reports every expansion (1, 2, 3, ...), so this emits
        # exactly at the multiples, as it always has; the async explorer
        # reports in merge-sized jumps, and a jump across a boundary
        # still surfaces.
        if states // self.expand_stride > self._expand_seen // self.expand_stride:
            self._emit(StatesExplored(states=states))
        self._expand_seen = states

    def _on_machine(self, machines: int, violations: int) -> None:
        self._emit(MachineChecked(machines=machines, violations=violations))

    def _on_reassign(self, task_index: int, worker: str) -> None:
        self._emit(ShardReassigned(task_index=task_index, worker=worker))

    def _on_partition_split(self, partition: int, source: str,
                            target: str, pending: int) -> None:
        self._emit(PartitionSplit(partition=partition, source=source,
                                  target=target, pending=pending))

    def _on_reused(self, request: VerificationRequest, key: str) -> None:
        self._emit(ResultReused(request=request, key=key))

    # -- running --------------------------------------------------------

    def run(self, request: VerificationRequest) -> VerificationResult:
        """Execute ``request`` and return its typed result.

        Raises:
            RequestError: the request is invalid (also raised eagerly
                by the request's own constructor).
            EngineError: the backend failed (worker loss, spawn
                failure, ...).
            VerificationError: an unsound parameter combination the
                checkers refuse (e.g. a non-equivariant choice under a
                symmetry quotient), or a store that cannot be written.
        """
        engine = self._engine if self._engine is not None \
            else create_engine(request.engine)
        if isinstance(engine, DistributedEngine):
            # Entering the engine copies the hooks onto the coordinator
            # (on_reassign) and the async explorer (on_partition_split).
            engine.on_reassign = self._on_reassign
            engine.on_partition_split = self._on_partition_split
        caching: CachingEngine | None = None
        if self._store is not None:
            from repro.store.caching import CachingEngine

            caching = CachingEngine(engine, self._store,
                                    refresh=self._store_refresh,
                                    subsume=self._store_subsume,
                                    on_reused=self._on_reused)
            engine = caching
        self._emit(RequestStarted(request=request,
                                  engine=engine.describe()))
        start = time.perf_counter()
        self._expand_seen = 0
        hit = False
        try:
            with TRACER.span("request." + request.kind, "session",
                             engine=engine.describe()) as root:
                result = None
                if caching is not None:
                    # Whole-request fast path: a warm request acquires
                    # no backend at all (no pool, no worker fleet).
                    result = caching.load_result(request)
                    hit = result is not None
                root.set(store_hit=hit)
                if result is None:
                    with engine:
                        runner = {
                            "prove": self._run_prove,
                            "hunt": self._run_hunt,
                            "zoo": self._run_zoo,
                            "campaign": self._run_campaign,
                        }[request.kind]
                        result = runner(request, engine)
                    if caching is not None and request.kind == "zoo":
                        # Engine-level binding stored the per-row
                        # results; the assembled matrix gets its own
                        # entry so a fully warm zoo is one lookup, not
                        # eleven.
                        caching.save_result(request, result)
        except BaseException as exc:
            self._emit(RequestFailed(request=request, error=str(exc)))
            raise
        result = result.with_timings(
            {**result.timings, "total_s": time.perf_counter() - start}
        )
        if caching is not None:
            # Provenance rides on the returned result only — stored
            # entries never carry it (the same entry is a miss once and
            # a hit ever after).
            from repro.store.keys import coverage_shards, store_key

            result = replace(result, provenance=StoreProvenance(
                store_key=store_key(request),
                shards=coverage_shards(request),
                hit=hit,
                served_from=caching.last_hit_key if hit else None,
            ))
        self._emit_violations(result)
        self._emit(RequestFinished(result=result))
        return result

    # -- streaming ------------------------------------------------------

    def iter_events(self, request: VerificationRequest) -> "EventStream":
        """Run ``request`` on a background thread, streaming its events.

        Returns an :class:`EventStream` — a plain iterator yielding
        every event a subscriber would see, in the same order, ending
        after the terminal event. Once exhausted, ``stream.result``
        holds the run's :class:`~repro.api.result.VerificationResult`;
        a failed run re-raises its error from the iterator after
        yielding :class:`RequestFailed`.

        One stream at a time per session: the stream feeds off the
        session's subscriber path, so two overlapping streaming runs on
        one session would interleave their events into both streams
        (exactly as they would for a shared subscriber).
        """
        return EventStream(self, request)

    def run_streaming(
        self, request: VerificationRequest,
    ) -> Generator[ProgressEvent, None, VerificationResult]:
        """Generator form of :meth:`iter_events`.

        Yields the run's events and *returns* the result, so a
        delegating consumer writes::

            result = yield from session.run_streaming(request)

        Plain ``for`` loops read the result off the terminal
        :class:`RequestFinished` event instead.
        """
        stream = self.iter_events(request)
        yield from stream
        return stream.result

    async def aiter_events(
        self, request: VerificationRequest,
    ) -> AsyncIterator[ProgressEvent]:
        """Asyncio adapter for :meth:`iter_events`.

        Yields the same events ``async for``-style without blocking the
        event loop (the stream's blocking reads run in the loop's
        default executor while the run itself stays on the stream's
        worker thread). The terminal :class:`RequestFinished` event
        carries the result; a failed run raises its error after
        :class:`RequestFailed`.
        """
        import asyncio

        stream = self.iter_events(request)
        loop = asyncio.get_running_loop()
        while True:
            event = await loop.run_in_executor(None, stream.next_event)
            if event is None:
                return
            yield event

    def _run_streamed(self, request: VerificationRequest,
                      deliver: Subscriber) -> VerificationResult:
        """Run with ``deliver`` temporarily subscribed (a stream's feed)."""
        self._subscribers.append(deliver)
        try:
            return self.run(request)
        finally:
            self._subscribers.remove(deliver)

    @staticmethod
    def _bound(engine: Engine,
               request: VerificationRequest) -> ContextManager[Any]:
        """Bind ``request`` on a caching engine; no-op on a bare one."""
        bind = getattr(engine, "bound", None)
        return bind(request) if bind is not None else nullcontext()

    def _progress_hooks(self, engine: Engine) -> dict[str, Any]:
        """The closure-progress kwargs this backend supports.

        Level-synchronous backends report per-level
        (:class:`LevelCompleted`); the async distributed mode has no
        levels and reports a cumulative expansion count instead
        (:class:`StatesExplored`, throttled by the session's stride,
        exactly like the serial DFS). A caching engine reports as the
        backend it wraps.
        """
        backend = getattr(engine, "inner", engine)
        if (isinstance(backend, DistributedEngine)
                and backend.mode == "async"):
            return {"on_expand": self._on_expand}
        return {"on_level": self._on_level}

    def _emit_violations(self, result: VerificationResult) -> None:
        certificates: list[WorkConservationCertificate] = []
        if result.certificate is not None:
            certificates.append(result.certificate)
        if result.zoo is not None:
            certificates.extend(result.zoo.certificates)
        for cert in certificates:
            for proof in cert.report.refuted:
                if proof.counterexample is not None:
                    self._emit(ViolationFound(
                        obligation=proof.obligation.key,
                        counterexample=proof.counterexample,
                    ))
        if result.analysis is not None and result.analysis.violated:
            lasso_cx = result.analysis.to_proof_result().counterexample
            if lasso_cx is not None:
                self._emit(ViolationFound(obligation="work_conservation",
                                          counterexample=lasso_cx))
        if result.campaign is not None:
            for violation in result.campaign.violations:
                self._emit(ViolationFound(obligation="campaign",
                                          counterexample=violation))

    # -- per-kind runners ----------------------------------------------

    def _run_prove(self, request: VerificationRequest,
                   engine: Engine) -> VerificationResult:
        resolved = request.resolve()
        assert resolved.policy is not None  # guaranteed by request validation
        with self._bound(engine, request):
            cert = engine.prove(
                resolved.policy, resolved.scope,
                choice_mode=request.choice_mode,
                max_orders=request.effective_max_orders,
                symmetric=request.symmetric,
                symmetry=resolved.symmetry,
                topology=resolved.topology,
                **self._progress_hooks(engine),
            )
        return result_from_certificate(request, cert)

    def _run_hunt(self, request: VerificationRequest,
                  engine: Engine) -> VerificationResult:
        from repro.api.engine import SerialEngine

        resolved = request.resolve()
        # A caching engine is as serial as the backend it wraps.
        backend = getattr(engine, "inner", engine)
        with self._bound(engine, request):
            if isinstance(backend, SerialEngine):
                # The serial closure is depth-first: exploration
                # progress comes from the checker's per-expansion hook,
                # not levels.
                analysis = engine.analyze(
                    resolved.policy, resolved.scope,
                    choice_mode=request.choice_mode,
                    max_orders=request.effective_max_orders,
                    symmetric=request.symmetric,
                    symmetry=resolved.symmetry,
                    topology=resolved.topology,
                    hierarchy=resolved.hierarchy,
                    on_expand=self._on_expand,
                )
            else:
                analysis = engine.analyze(
                    resolved.policy, resolved.scope,
                    choice_mode=request.choice_mode,
                    max_orders=request.effective_max_orders,
                    symmetric=request.symmetric,
                    symmetry=resolved.symmetry,
                    topology=resolved.topology,
                    hierarchy=resolved.hierarchy,
                    **self._progress_hooks(engine),
                )
        return result_from_analysis(request, analysis)

    @staticmethod
    def _zoo_row_request(request: VerificationRequest, name: str,
                         kwargs: dict) -> VerificationRequest:
        """The derived prove request addressing one zoo row.

        Spelled with the zoo's *effective* scope and order cap, so the
        row shares a store entry with any equivalent standalone prove
        request on the same engine.
        """
        builder = (VerificationRequest.builder("prove")
                   .policy(name, **kwargs)
                   .scope(cores=request.cores,
                          max_load=request.effective_max_load)
                   .max_orders(request.effective_max_orders)
                   .choice_mode(request.choice_mode)
                   .symmetric(request.symmetric)
                   .no_symmetry(request.no_symmetry)
                   .topology(request.topology)
                   .engine(request.engine))
        return builder.build()

    def _run_zoo(self, request: VerificationRequest,
                 engine: Engine) -> VerificationResult:
        resolved = request.resolve()
        policies = zoo_lineup(resolved.topology)
        # With a store attached, each row is dispatched under its own
        # derived prove request: the lineup partitions into hits served
        # from the store and misses fanned out to the backend.
        entries = (zoo_lineup_entries(resolved.topology)
                   if hasattr(engine, "bound") else None)
        if entries is not None and len(entries) != len(policies):
            # The request-level lineup drifted from the built one (a
            # test pins their alignment, so this is belt-and-braces):
            # misaligned rows would store certificates under the wrong
            # addresses, so run this zoo uncached instead.
            entries = None
        certificates: list[WorkConservationCertificate] = []
        for index, policy in enumerate(policies):
            self._emit(PolicyStarted(policy=policy.name, index=index,
                                     total=len(policies)))
            if entries is not None:
                name, kwargs = entries[index]
                context: ContextManager[Any] = self._bound(
                    engine, self._zoo_row_request(request, name, kwargs)
                )
            else:
                context = nullcontext()
            with context:
                cert = engine.prove(
                    policy, resolved.scope,
                    choice_mode=request.choice_mode,
                    max_orders=request.effective_max_orders,
                    symmetric=request.symmetric,
                    symmetry=resolved.symmetry,
                    topology=resolved.topology,
                    **self._progress_hooks(engine),
                )
            certificates.append(cert)
            self._emit(PolicyFinished(policy=policy.name, index=index,
                                      total=len(policies),
                                      proved=cert.proved))
        report = ZooReport(scope=resolved.scope.describe(),
                           certificates=certificates)
        return result_from_zoo(request, report)

    def _run_campaign(self, request: VerificationRequest,
                      engine: Engine) -> VerificationResult:
        config = request.campaign_config()
        with self._bound(engine, request):
            report: CampaignReport = engine.run_campaign(
                request.policy_factory(), config,
                on_machine=self._on_machine,
            )
        return result_from_campaign(request, report)


# ---------------------------------------------------------------------------
# streaming
# ---------------------------------------------------------------------------

_STREAM_DONE = object()  # queue sentinel: the run is over


class EventStream:
    """Iterator over one streaming run's progress events.

    Created by :meth:`Session.iter_events`. The run executes on a
    daemon worker thread; iterating yields every event the run emits —
    including those arriving from coordinator dispatch threads — in
    emission order, ending after the terminal event
    (:class:`RequestFinished` or :class:`RequestFailed`). A failed run
    re-raises its error from the iterator *after* yielding
    :class:`RequestFailed`, so consumers always observe the complete
    event sequence. Once exhausted, :attr:`result` holds the run's
    result.
    """

    def __init__(self, session: Session,
                 request: VerificationRequest) -> None:
        self.request = request
        self._queue: queue.SimpleQueue[Any] = queue.SimpleQueue()
        self._result: VerificationResult | None = None
        self._error: BaseException | None = None
        self._finished = False
        self._thread = threading.Thread(
            target=self._run, args=(session,),
            name="repro-event-stream", daemon=True,
        )
        self._thread.start()

    def _run(self, session: Session) -> None:
        try:
            self._result = session._run_streamed(self.request,
                                                 self._queue.put)
        except BaseException as exc:  # re-raised by the consumer
            self._error = exc
        finally:
            self._queue.put(_STREAM_DONE)

    def next_event(self) -> ProgressEvent | None:
        """Block for the next event; ``None`` once the run is over.

        A failed run raises its error here (once, after the final
        :class:`RequestFailed` event has been returned) instead of
        ever returning ``None``.
        """
        if self._finished:
            return None
        item = self._queue.get()
        if item is _STREAM_DONE:
            self._finished = True
            self._thread.join()
            if self._error is not None:
                raise self._error
            return None
        return item

    def __iter__(self) -> Iterator[ProgressEvent]:
        return self

    def __next__(self) -> ProgressEvent:
        event = self.next_event()
        if event is None:
            raise StopIteration
        return event

    @property
    def result(self) -> VerificationResult:
        """The run's result; available once the stream is exhausted."""
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise RequestError(
                "the stream's result is only available after iterating"
                " it to the end"
            )
        return self._result


def run_request(request: VerificationRequest,
                subscribers: Iterable[Subscriber] = (),
                ) -> VerificationResult:
    """One-shot convenience: run ``request`` on a fresh session."""
    return Session(subscribers=subscribers).run(request)

"""Declarative spec files: a whole verification campaign as one document.

A spec file is a JSON document describing a sequence of verification
runs — which policies, which scopes, which topologies, which engines —
so a campaign is reviewable (and diffable) as data instead of living in
a shell script of CLI invocations. ``python -m repro run-spec FILE``
executes one; programmatic callers use :func:`load_spec` +
:func:`run_spec`.

Schema (all sizes are illustrative)::

    {
      "spec_version": 1,
      "name": "quickstart",
      "description": "Prove Listing 1, refute the naive filter.",
      "defaults": {
        "scope": {"cores": 3, "max_load": 3},
        "engine": {"kind": "pool", "jobs": 2}
      },
      "runs": [
        {"name": "prove-balance-count", "kind": "prove",
         "policy": {"name": "balance_count", "margin": 2}},
        {"name": "hunt-naive", "kind": "hunt", "policy": "naive",
         "scope": {"max_load": 2}},
        {"name": "fuzz", "kind": "campaign", "policy": "balance_count",
         "campaign": {"machines": 20, "rounds": 10}}
      ]
    }

Each run entry is the request document format of
:func:`repro.api.report.request_from_dict` plus a ``name`` (unique
within the spec; defaulted from the kind and policy when omitted).
``defaults`` is merged under every run — one level deep, so a run's
``"scope": {"max_load": 2}`` overrides only ``max_load`` and keeps the
default ``cores``. A run that must *not* inherit a default engine or
scope simply states its own.

A run entry may instead carry a ``matrix`` stanza — request keys mapped
to value lists — and expands into the cartesian product of runs, one
per combination::

    {"name": "sweep", "kind": "prove",
     "matrix": {"policy": ["balance_count", "greedy_halving"],
                "scope": [{"max_load": 2}, {"max_load": 3}]}}

expands to four runs with deterministic generated names
(``sweep-balance_count-max_load2``, ...): axes iterate in sorted key
order, each axis in document order. The expanded documents then merge
with ``defaults`` exactly like hand-written runs. One stanza replaces N
near-identical entries — and, paired with ``--store``, editing one axis
only re-proves the new cells.

Validation is eager: :func:`load_spec` builds (and thereby validates)
every request before anything runs, so a typo in run 7 fails fast
instead of after an hour of run 1.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.core.errors import VerificationError

from repro.api.report import request_from_dict
from repro.api.request import RequestError, VerificationRequest
from repro.api.result import VerificationResult
from repro.api.session import Session, Subscriber

if TYPE_CHECKING:  # pragma: no cover - hints only; imported lazily
    from repro.store.backends import ResultStore

#: The one spec format this loader understands.
SPEC_VERSION = 1

_SPEC_KEYS = frozenset({
    "spec_version", "name", "description", "defaults", "runs",
})


class SpecError(VerificationError):
    """A spec document that cannot be loaded."""


@dataclass(frozen=True)
class SpecRun:
    """One named run of a spec file."""

    name: str
    request: VerificationRequest


@dataclass(frozen=True)
class SpecFile:
    """A parsed, fully validated spec document.

    Attributes:
        name: the campaign's name.
        description: reviewer-facing summary.
        runs: the validated runs, in document order.
        path: source path, when loaded from disk.
    """

    name: str
    description: str
    runs: tuple[SpecRun, ...]
    path: str | None = None

    def run_named(self, name: str) -> SpecRun:
        """Look up a run by name.

        Raises:
            SpecError: no such run.
        """
        for run in self.runs:
            if run.name == name:
                return run
        raise SpecError(
            f"spec {self.name!r} has no run named {name!r};"
            f" available: {', '.join(r.name for r in self.runs)}"
        )


def _merge_defaults(defaults: Mapping[str, Any],
                    entry: Mapping[str, Any]) -> dict[str, Any]:
    """Overlay a run entry on the spec defaults, one level deep."""
    merged: dict[str, Any] = dict(defaults)
    for key, value in entry.items():
        base = merged.get(key)
        if isinstance(base, Mapping) and isinstance(value, Mapping):
            merged[key] = {**base, **value}
        else:
            merged[key] = value
    return merged


def _default_name(request: VerificationRequest, index: int) -> str:
    target = request.policy.name if request.policy is not None else "zoo"
    return f"run{index + 1}-{request.kind}-{target}"


# ---------------------------------------------------------------------------
# matrix stanzas
# ---------------------------------------------------------------------------

#: Request-document keys a matrix stanza may use as axes.
_MATRIX_AXES = frozenset({
    "kind", "policy", "scope", "max_orders", "choice_mode", "symmetric",
    "no_symmetry", "topology", "engine", "campaign",
})


def _slug(value: Any) -> str:
    """A deterministic name fragment for one axis value.

    Policy-style objects lead with their ``name`` so the generated run
    names read naturally (``{"name": "balance_count", "margin": 1}``
    becomes ``balance_count-margin1``).
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    if isinstance(value, (int, float, str)):
        return str(value)
    if isinstance(value, Mapping):
        parts = []
        if "name" in value:
            parts.append(_slug(value["name"]))
        parts.extend(f"{key}{_slug(item)}"
                     for key, item in sorted(value.items())
                     if key != "name")
        return "-".join(parts) if parts else "empty"
    if isinstance(value, (list, tuple)):
        return "-".join(_slug(item) for item in value) or "empty"
    return str(value)


def _expand_matrix(entry: Mapping[str, Any], matrix: Any, name: str | None,
                   index: int) -> list[tuple[str, dict[str, Any]]]:
    """Expand one matrix stanza into its cartesian product of runs.

    Axes are iterated in sorted key order and each axis in document
    order, so both the expansion order and the generated names
    (``<base>-<axis slug>-...``) are deterministic functions of the
    document.

    Raises:
        SpecError: a malformed stanza — non-object matrix, empty or
            non-list axis, an unknown axis key, or an axis also set on
            the run entry itself.
    """
    label = name if name is not None else f"runs[{index}]"
    if not isinstance(matrix, Mapping) or not matrix:
        raise SpecError(
            f"run {label!r}: 'matrix' must be a non-empty object of"
            " request keys to value lists"
        )
    unknown = sorted(set(matrix) - _MATRIX_AXES)
    if unknown:
        raise SpecError(
            f"run {label!r}: unknown matrix axis"
            f" {', '.join(map(repr, unknown))}; expected a subset of:"
            f" {', '.join(sorted(_MATRIX_AXES))}"
        )
    overlap = sorted(set(matrix) & set(entry))
    if overlap:
        raise SpecError(
            f"run {label!r}: matrix axis {', '.join(map(repr, overlap))}"
            " is also set on the run itself; state each value in exactly"
            " one place"
        )
    axes = sorted(matrix)
    for axis in axes:
        values = matrix[axis]
        if not isinstance(values, list) or not values:
            raise SpecError(
                f"run {label!r}: matrix axis {axis!r} must be a"
                " non-empty list of values"
            )
    base = name if name is not None else f"run{index + 1}"
    expanded: list[tuple[str, dict[str, Any]]] = []
    for combination in itertools.product(*(matrix[axis] for axis in axes)):
        document = dict(entry)
        document.update(zip(axes, combination))
        suffix = "-".join(_slug(value) for value in combination)
        expanded.append((f"{base}-{suffix}", document))
    return expanded


def parse_spec(document: Mapping[str, Any], *,
               path: str | None = None) -> SpecFile:
    """Parse (and fully validate) a spec document.

    Raises:
        SpecError: structural problems — unknown keys, missing runs,
            duplicate names, or an invalid request in any run (the
            underlying :class:`~repro.api.request.RequestError` is
            chained and its message included).
    """
    if not isinstance(document, Mapping):
        raise SpecError(
            f"a spec must be a JSON object, got {type(document).__name__}"
        )
    unknown = sorted(set(document) - _SPEC_KEYS)
    if unknown:
        raise SpecError(
            f"unknown spec key(s) {', '.join(map(repr, unknown))};"
            f" expected a subset of: {', '.join(sorted(_SPEC_KEYS))}"
        )
    version = document.get("spec_version", SPEC_VERSION)
    if version != SPEC_VERSION:
        raise SpecError(
            f"unsupported spec_version {version!r}; this loader"
            f" understands {SPEC_VERSION}"
        )
    runs_doc = document.get("runs")
    if not isinstance(runs_doc, list) or not runs_doc:
        raise SpecError("a spec needs a non-empty 'runs' list")
    defaults = document.get("defaults", {})
    if not isinstance(defaults, Mapping):
        raise SpecError("'defaults' must be an object")
    if "kind" in defaults:
        raise SpecError(
            "'kind' cannot be defaulted: every run states what it does"
        )

    runs: list[SpecRun] = []
    seen: set[str] = set()

    def add_run(name: str | None, run_doc: dict[str, Any],
                index: int) -> None:
        try:
            request = request_from_dict(_merge_defaults(defaults, run_doc))
        except RequestError as exc:
            label = name if name is not None else f"runs[{index}]"
            raise SpecError(f"invalid run {label!r}: {exc}") from exc
        if name is None:
            name = _default_name(request, index)
        if name in seen:
            raise SpecError(f"duplicate run name {name!r}")
        seen.add(name)
        runs.append(SpecRun(name=name, request=request))

    for index, entry in enumerate(runs_doc):
        if not isinstance(entry, Mapping):
            raise SpecError(
                f"runs[{index}] must be an object,"
                f" got {type(entry).__name__}"
            )
        entry = dict(entry)
        name = entry.pop("name", None)
        matrix = entry.pop("matrix", None)
        if matrix is not None:
            for generated, run_doc in _expand_matrix(entry, matrix,
                                                     name, index):
                add_run(generated, run_doc, index)
        else:
            add_run(name, entry, index)

    return SpecFile(
        name=document.get("name", path or "unnamed"),
        description=document.get("description", ""),
        runs=tuple(runs),
        path=path,
    )


def load_spec(path: str) -> SpecFile:
    """Load and validate a spec file from disk.

    Raises:
        SpecError: unreadable file, invalid JSON, or an invalid spec.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise SpecError(f"cannot read spec {path!r}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec {path!r} is not valid JSON: {exc}") from exc
    return parse_spec(document, path=path)


def run_spec(spec: SpecFile, *, only: str | None = None,
             session: Session | None = None,
             subscribers: tuple[Subscriber, ...] = (),
             store: "ResultStore | None" = None,
             store_refresh: bool = False,
             ) -> list[tuple[SpecRun, VerificationResult]]:
    """Execute a spec's runs in order.

    With a ``store``, the spec's request set partitions into hits —
    served straight from the store as
    :class:`~repro.api.session.ResultReused` events — and misses, which
    alone are dispatched to their engines: the incremental campaign
    driver. Re-running an unchanged spec explores nothing.

    Args:
        spec: the loaded spec.
        only: run just the named run (see :meth:`SpecFile.run_named`).
        session: the session to run on (one is created otherwise).
        subscribers: progress subscribers, attached to the created *or*
            provided session.
        store: a :class:`~repro.store.backends.ResultStore` for the
            created session (configure a provided ``session`` directly
            instead of passing both).
        store_refresh: skip store lookups but store fresh results.

    Returns:
        ``(run, result)`` pairs in execution order.

    Raises:
        RequestError: a ``session`` was given together with ``store``
            or ``store_refresh`` (configure the session instead).
    """
    if session is None:
        session = Session(subscribers=subscribers, store=store,
                          store_refresh=store_refresh)
    else:
        if store is not None or store_refresh:
            raise RequestError(
                "pass the store (and store_refresh) when constructing"
                " the session, not to run_spec as well"
            )
        for subscriber in subscribers:
            session.subscribe(subscriber)
    selected = [spec.run_named(only)] if only is not None else list(spec.runs)
    return [(run, session.run(run.request)) for run in selected]

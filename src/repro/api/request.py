"""Typed verification requests: what to verify, at what scope, on which engine.

A :class:`VerificationRequest` is the single value every entry point —
the CLI, declarative spec files, and programmatic callers — reduces to.
It is frozen (safe to share, hash by field, embed in results), validated
eagerly at construction, and deliberately built from *primitives only*
(policy name + parameters, topology spec string, engine spec): the
resolved objects (a :class:`~repro.core.policy.Policy` instance, a
:class:`~repro.topology.numa.NumaTopology`, a
:class:`~repro.verify.symmetry.SymmetryGroup`) are derived on demand by
:meth:`VerificationRequest.resolve`, so a request can be serialised
losslessly (see :mod:`repro.api.report`) and rebuilt anywhere — the same
discipline :class:`~repro.verify.wire.CheckerConfig` applies one layer
down for remote workers.

Use the fluent builder for readable construction::

    from repro.api import VerificationRequest

    request = (VerificationRequest.builder("prove")
               .policy("balance_count", margin=2)
               .scope(cores=3, max_load=3)
               .pool(jobs=4)
               .build())

Validation errors raise :class:`RequestError` with the same one-line
messages the CLI has always printed (they are phrased in terms of the
flags, which remain the canonical names of the fields).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.core.errors import VerificationError
from repro.core.policy import Policy
from repro.topology.numa import NumaTopology
from repro.verify.enumeration import StateScope
from repro.verify.hierarchical import HierarchySpec
from repro.verify.symmetry import SymmetryGroup
from repro.verify.transition import DEFAULT_MAX_ORDERS


class RequestError(VerificationError):
    """A :class:`VerificationRequest` that cannot be run as written."""


#: The request kinds, mirroring the four verification subcommands.
REQUEST_KINDS = ("prove", "hunt", "zoo", "campaign")

#: Per-kind default ``max_load`` when the request leaves it unset —
#: exactly the CLI defaults (verify/zoo 3, hunt 2, campaign 8).
DEFAULT_MAX_LOAD = {"prove": 3, "hunt": 2, "zoo": 3, "campaign": 8}

#: Default scope width when neither ``cores`` nor a topology is given.
DEFAULT_CORES = 3

#: The zoo's historical racing-permutation cap (``verify_zoo``'s
#: default); ``prove``/``hunt`` requests default to the transition
#: layer's :data:`~repro.verify.transition.DEFAULT_MAX_ORDERS`.
ZOO_MAX_ORDERS = 720

#: Default cap on fuzzed machine size when a campaign leaves it unset.
DEFAULT_CAMPAIGN_MAX_CORES = 12

#: The hunt-only pseudo-policy selecting the §5 hierarchical checker.
HIERARCHICAL = "hierarchical"


# ---------------------------------------------------------------------------
# policy registry
# ---------------------------------------------------------------------------


def _policy_registry() -> "dict[str, Callable[[PolicySpec, NumaTopology | None], Policy]]":
    """Name -> factory for every buildable policy (insertion order is the
    order error messages list them in; imports stay local so listing
    policies does not import the whole zoo at module import time)."""
    from repro.baselines import IdleOnlyRandomStealPolicy, RandomStealPolicy
    from repro.policies import (
        BalanceCountPolicy,
        GreedyHalvingPolicy,
        NaiveOverloadedPolicy,
        ProvableWeightedPolicy,
        WeightedBalancePolicy,
    )
    from repro.policies.naive import (
        GreedyReadyPolicy,
        InvertedFilterPolicy,
        OverStealingPolicy,
    )
    from repro.policies.numa_aware import (
        LeastMigrationsChoicePolicy,
        NumaAwareChoicePolicy,
    )

    return {
        "balance_count": lambda s, t: BalanceCountPolicy(margin=s.margin),
        "greedy_halving": lambda s, t: GreedyHalvingPolicy(margin=s.margin),
        "weighted": lambda s, t: WeightedBalancePolicy(),
        "provable_weighted": lambda s, t: ProvableWeightedPolicy(),
        "naive": lambda s, t: NaiveOverloadedPolicy(),
        "greedy_ready": lambda s, t: GreedyReadyPolicy(),
        "inverted": lambda s, t: InvertedFilterPolicy(),
        "over_stealing": lambda s, t: OverStealingPolicy(),
        "random_steal": lambda s, t: RandomStealPolicy(seed=s.seed),
        "idle_random_steal": lambda s, t: IdleOnlyRandomStealPolicy(
            seed=s.seed
        ),
        "numa_choice": lambda s, t: NumaAwareChoicePolicy(
            _require_layout(t, "numa_choice"), margin=s.margin
        ),
        "cache_choice": lambda s, t: LeastMigrationsChoicePolicy(
            _require_layout(t, "cache_choice"), margin=s.margin
        ),
    }


#: Policies that can only be built against a machine layout.
TOPOLOGY_POLICIES = frozenset({"numa_choice", "cache_choice"})


def policy_names() -> tuple[str, ...]:
    """Every buildable policy name, in registry order."""
    return tuple(_policy_registry())


def _require_layout(topology: NumaTopology | None,
                    policy_name: str) -> NumaTopology:
    """The topology, mandatory for topology-aware policies."""
    if topology is None:
        raise RequestError(
            f"policy {policy_name!r} needs a machine layout: pass"
            " --topology numa:NxM (or mesh:SxM)"
        )
    return topology


def build_policy(spec: "PolicySpec",
                 topology: NumaTopology | None = None) -> Policy:
    """Construct the policy a :class:`PolicySpec` names.

    Raises:
        RequestError: unknown name, or a topology-aware policy without
            a machine layout.
    """
    registry = _policy_registry()
    if spec.name not in registry:
        raise RequestError(
            f"unknown policy {spec.name!r}; try: {', '.join(registry)}"
        )
    return registry[spec.name](spec, topology)


def parse_topology(text: str) -> NumaTopology | None:
    """Parse a topology spec string into a :class:`NumaTopology`.

    Accepted forms: ``flat`` (no topology, returns ``None``),
    ``numa:NxM`` (N fully connected nodes of M cores), ``mesh:SxM``
    (an SxS 2D mesh of M-core nodes).

    Raises:
        RequestError: anything else.
    """
    from repro.topology import mesh_numa, symmetric_numa

    text = text.strip().lower()
    if text == "flat":
        return None
    kind, _, dims = text.partition(":")
    parts = dims.split("x")
    if kind in ("numa", "mesh") and len(parts) == 2 \
            and all(p.isdigit() and int(p) > 0 for p in parts):
        first, second = int(parts[0]), int(parts[1])
        if kind == "numa":
            return symmetric_numa(first, second)
        return mesh_numa(first, second)
    raise RequestError(
        f"bad --topology {text!r}: expected flat, numa:NxM, or mesh:SxM"
    )


# ---------------------------------------------------------------------------
# request components
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicySpec:
    """A policy by name plus its construction parameters.

    Attributes:
        name: registry name (see :func:`policy_names`), or
            ``"hierarchical"`` on a ``hunt`` request.
        margin: Listing 1 margin for the margin-parameterised policies.
        seed: seed for the randomised policies (and, on ``campaign``
            requests built by the CLI, the campaign master seed).
    """

    name: str
    margin: int = 2
    seed: int = 0


@dataclass(frozen=True)
class EngineSpec:
    """Which engine executes the request.

    Attributes:
        kind: ``"serial"``, ``"pool"`` (multiprocessing,
            :mod:`repro.verify.parallel`) or ``"distributed"``
            (coordinator/workers, :mod:`repro.verify.distributed`).
        jobs: pool worker processes (``0`` = one per CPU).
        workers: distributed worker count to spawn (``--distributed N``).
        endpoints: already-running workers to connect to
            (``--workers host:port,...``).
        in_process: run the distributed engine over in-process
            transports (every frame still round-trips the wire
            encoding) — the zero-setup deployment used by tests and
            engine-equivalence checks.
        mode: distributed closure exploration: ``"level-sync"``
            (barriered BFS, the historical behaviour) or ``"async"``
            (barrier-free hash-partitioned exploration with work
            stealing). Verdicts and certificates are identical either
            way, so the mode is *not* part of the store coverage class
            (see :mod:`repro.store.keys`).
        partitions: async-mode hash partition count (``None`` = 4 per
            worker). More partitions mean finer stealing granularity.
    """

    kind: str = "serial"
    jobs: int = 1
    workers: int | None = None
    endpoints: tuple[str, ...] = ()
    in_process: bool = False
    mode: str = "level-sync"
    partitions: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("serial", "pool", "distributed"):
            raise RequestError(
                f"unknown engine kind {self.kind!r}; expected serial,"
                " pool, or distributed"
            )
        if self.mode not in ("level-sync", "async"):
            raise RequestError(
                f"unknown engine mode {self.mode!r}; expected level-sync"
                " or async"
            )
        if self.kind != "distributed":
            if self.mode != "level-sync" or self.partitions is not None:
                raise RequestError(
                    f"mode/partitions only apply to the distributed"
                    f" engine, not {self.kind!r}"
                )
        elif self.partitions is not None:
            if self.mode != "async":
                raise RequestError(
                    "partitions only apply to mode='async': level-sync"
                    " exploration shards by worker, not by partition"
                )
            if self.partitions < 1:
                raise RequestError(
                    f"partitions must be >= 1, got {self.partitions}"
                )
        if self.kind == "pool" and self.jobs < 0:
            raise RequestError(
                f"engine jobs must be >= 0 (0 = one per CPU), got {self.jobs}"
            )
        if self.kind == "distributed":
            if self.jobs != 1:
                # Mirrors the CLI: --jobs combined with
                # --distributed/--workers is a conflict, never silently
                # dropped.
                raise RequestError(
                    "jobs cannot be combined with a distributed engine:"
                    " pick one engine"
                )
            if (self.workers is None) == (not self.endpoints):
                raise RequestError(
                    "a distributed engine needs exactly one of workers"
                    " (spawn N) or endpoints (connect to HOST:PORT list)"
                )
            if self.workers is not None and self.workers < 1:
                raise RequestError(
                    f"distributed worker count must be >= 1, got"
                    f" {self.workers}"
                )
            if self.in_process and self.endpoints:
                raise RequestError(
                    "in_process is incompatible with endpoints: in-process"
                    " workers live in the coordinator, not on the network"
                )
        else:
            if self.workers is not None or self.endpoints or self.in_process:
                raise RequestError(
                    f"workers/endpoints/in_process only apply to the"
                    f" distributed engine, not {self.kind!r}"
                )
            if self.kind == "serial" and self.jobs != 1:
                raise RequestError(
                    "a serial engine has exactly one worker; set"
                    " kind='pool' to use jobs"
                )

    def describe(self) -> str:
        """One-line engine description for progress events and docs."""
        if self.kind == "serial":
            return "serial"
        if self.kind == "pool":
            return f"pool[jobs={self.jobs}]"
        suffix = ", async" if self.mode == "async" else ""
        if self.endpoints:
            return f"distributed[{','.join(self.endpoints)}{suffix}]"
        transport = "in-process" if self.in_process else "tcp"
        return f"distributed[{self.workers} {transport} workers{suffix}]"


@dataclass(frozen=True)
class CampaignLimits:
    """Budgets of a randomised fuzzing campaign.

    Attributes:
        machines: random initial machines to explore.
        max_cores: largest fuzzed machine (``None`` = 12, capped by the
            request's topology).
        rounds: adversarial rounds per machine.
        seed: master seed; a campaign reproduces exactly for a fixed
            ``(seed, worker count)`` pair.
    """

    machines: int = 50
    max_cores: int | None = None
    rounds: int = 30
    seed: int = 0


@dataclass(frozen=True)
class ResolvedRequest:
    """A request's derived runtime objects, resolved once.

    Attributes:
        policy: the constructed policy (``None`` for ``zoo`` requests
            and hierarchical hunts).
        scope: the finite state universe to sweep.
        topology: the parsed machine layout, when one was requested.
        symmetry: the symmetry group quotienting exploration, when one
            applies.
        hierarchy: the hierarchical checker spec (hierarchical hunts).
    """

    policy: Policy | None
    scope: StateScope
    topology: NumaTopology | None
    symmetry: SymmetryGroup | None
    hierarchy: HierarchySpec | None


# ---------------------------------------------------------------------------
# the request itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VerificationRequest:
    """One verification run, fully described by primitives.

    Attributes:
        kind: ``"prove"`` (full §4 pipeline), ``"hunt"`` (model-check
            only), ``"zoo"`` (pipeline over the policy lineup), or
            ``"campaign"`` (randomised fuzzing).
        policy: the policy under test (``None`` for ``zoo``).
        cores: scope width (``None``: topology core count, else 3).
        max_load: scope load ceiling (``None``: the kind's CLI default).
        max_orders: racing-permutation cap (``None``: 720 for ``zoo``,
            :data:`~repro.verify.transition.DEFAULT_MAX_ORDERS` else).
        choice_mode: ``"all"`` quantifies over every candidate choice;
            ``"policy"`` fixes the policy's own choice.
        symmetric: legacy flat full-renaming group flag.
        no_symmetry: explore the full state space even when a topology
            would quotient it.
        topology: machine layout spec string (``"numa:NxM"``,
            ``"mesh:SxM"``, ``"flat"``) or ``None``.
        engine: which engine runs the request.
        campaign: fuzzing budgets (``campaign`` requests only).
    """

    kind: str
    policy: PolicySpec | None = None
    cores: int | None = None
    max_load: int | None = None
    max_orders: int | None = None
    choice_mode: str = "all"
    symmetric: bool = False
    no_symmetry: bool = False
    topology: str | None = None
    engine: EngineSpec = field(default_factory=EngineSpec)
    campaign: CampaignLimits | None = None

    # -- construction ---------------------------------------------------

    @staticmethod
    def builder(kind: str) -> "RequestBuilder":
        """A fluent :class:`RequestBuilder` for ``kind``."""
        return RequestBuilder(kind)

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise RequestError(
                f"unknown request kind {self.kind!r}; expected one of"
                f" {', '.join(REQUEST_KINDS)}"
            )
        if self.choice_mode not in ("all", "policy"):
            raise RequestError(
                f"choice_mode must be 'all' or 'policy', got"
                f" {self.choice_mode!r}"
            )
        if self.kind == "zoo":
            if self.policy is not None:
                raise RequestError(
                    "a zoo request verifies the whole lineup; it takes"
                    " no single policy"
                )
        elif self.policy is None:
            raise RequestError(f"a {self.kind} request needs a policy")
        if self.policy is not None and self.policy.name == HIERARCHICAL:
            if self.kind == "prove":
                raise RequestError(
                    "the hierarchical balancer has no flat per-core round"
                    " to sweep; model-check it with: hunt hierarchical"
                    " --topology numa:NxM"
                )
            if self.kind != "hunt":
                raise RequestError(
                    "the hierarchical checker is hunt-only"
                )
        if self.campaign is not None and self.kind != "campaign":
            raise RequestError(
                f"campaign limits only apply to campaign requests,"
                f" not {self.kind!r}"
            )
        if self.no_symmetry and self.symmetric:
            raise RequestError(
                "--no-symmetry conflicts with --symmetric; pick one"
            )
        # Unknown names are reported before any topology diagnostics,
        # mirroring the CLI's historical check order.
        if (self.policy is not None and self.policy.name != HIERARCHICAL
                and self.policy.name not in policy_names()):
            build_policy(self.policy, None)  # raises the unknown-name error
        topology = self._parsed_topology()
        if topology is not None:
            if self.symmetric:
                raise RequestError(
                    "--symmetric (flat group) conflicts with --topology;"
                    " the topology's own symmetry group is already applied"
                )
            if self.cores is not None:
                raise RequestError(
                    f"--cores {self.cores} conflicts with --topology"
                    f" (which fixes the scope at {topology.n_cores} cores);"
                    " drop one of the two"
                )
            limits = self.campaign
            if (limits is not None and limits.max_cores is not None
                    and limits.max_cores > topology.n_cores):
                raise RequestError(
                    f"--max-cores {limits.max_cores} conflicts with"
                    " --topology (which caps machines at"
                    f" {topology.n_cores} cores); drop one of the two"
                )
        # Unknown policy names / missing layouts fail now, not at run
        # time inside a worker.
        if (self.policy is not None
                and self.policy.name != HIERARCHICAL):
            build_policy(self.policy, topology)
        if self.policy is not None and self.policy.name == HIERARCHICAL:
            _require_layout(topology, HIERARCHICAL)

    # -- derived values -------------------------------------------------

    def _parsed_topology(self) -> NumaTopology | None:
        return (parse_topology(self.topology)
                if self.topology is not None else None)

    @property
    def effective_max_load(self) -> int:
        """``max_load``, defaulted per kind exactly as the CLI does."""
        if self.max_load is not None:
            return self.max_load
        return DEFAULT_MAX_LOAD[self.kind]

    @property
    def effective_max_orders(self) -> int:
        """``max_orders``, with the zoo's historical 720 default."""
        if self.max_orders is not None:
            return self.max_orders
        return ZOO_MAX_ORDERS if self.kind == "zoo" else DEFAULT_MAX_ORDERS

    def scope_cores(self, topology: NumaTopology | None = None) -> int:
        """Scope width: the topology's core count when one is given."""
        if topology is None:
            topology = self._parsed_topology()
        if topology is not None:
            return topology.n_cores
        return self.cores if self.cores is not None else DEFAULT_CORES

    def campaign_config(self):  # -> CampaignConfig
        """The :class:`~repro.verify.campaign.CampaignConfig` this
        request describes (``campaign`` requests only)."""
        from repro.verify.campaign import CampaignConfig

        if self.kind != "campaign":
            raise RequestError(
                f"a {self.kind} request has no campaign configuration"
            )
        limits = self.campaign if self.campaign is not None \
            else CampaignLimits()
        topology = self._parsed_topology()
        max_cores = (limits.max_cores if limits.max_cores is not None
                     else DEFAULT_CAMPAIGN_MAX_CORES)
        if topology is not None:
            # Topology-aware policies index node tables by core id, so
            # fuzzed machines must not outgrow the declared layout (an
            # explicitly larger request was already rejected above).
            max_cores = min(max_cores, topology.n_cores)
        return CampaignConfig(
            n_machines=limits.machines,
            max_cores=max_cores,
            max_load=self.effective_max_load,
            rounds_per_machine=limits.rounds,
            seed=limits.seed,
        )

    def resolve(self) -> ResolvedRequest:
        """Derive the runtime objects the engines consume.

        The request's symmetry group mirrors the CLI rules: a topology
        selects its automorphism group (or the hierarchy spec's domain
        group on hierarchical hunts); ``no_symmetry`` disables the
        quotient; ``symmetric`` alone is carried separately as the
        legacy flat-group flag.
        """
        topology = self._parsed_topology()
        hierarchy: HierarchySpec | None = None
        policy: Policy | None = None
        symmetry: SymmetryGroup | None = None
        if self.policy is not None and self.policy.name == HIERARCHICAL:
            layout = _require_layout(topology, HIERARCHICAL)
            hierarchy = HierarchySpec(topology=layout,
                                      group_margin=self.policy.margin,
                                      intra_margin=self.policy.margin)
            if not self.no_symmetry:
                symmetry = hierarchy.symmetry_group()
        else:
            if topology is not None and not self.no_symmetry:
                from repro.verify.symmetry import NumaSymmetryGroup

                symmetry = NumaSymmetryGroup(topology)
            if self.policy is not None:
                policy = build_policy(self.policy, topology)
        scope = StateScope(n_cores=self.scope_cores(topology),
                           max_load=self.effective_max_load)
        return ResolvedRequest(policy=policy, scope=scope,
                               topology=topology, symmetry=symmetry,
                               hierarchy=hierarchy)

    def policy_factory(self) -> Callable[[], Policy]:
        """A zero-argument factory building fresh policy instances
        (randomised policies hold RNG state, so campaigns need one
        instance per machine)."""
        spec = self.policy
        if spec is None or spec.name == HIERARCHICAL:
            target = spec.name if spec is not None else "no policy"
            raise RequestError(
                f"a {self.kind} request over {target}"
                " has no buildable policy"
            )
        topology = self._parsed_topology()
        return lambda: build_policy(spec, topology)

    def describe(self) -> str:
        """One-line request summary for progress events and spec
        listings."""
        parts = [self.kind if self.policy is None
                 else f"{self.kind} {self.policy.name}"]
        if self.topology is not None:
            parts.append(f"topology={self.topology}")
        parts.append(f"engine={self.engine.describe()}")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# the fluent builder
# ---------------------------------------------------------------------------


class RequestBuilder:
    """Fluent construction of a :class:`VerificationRequest`.

    Every setter returns the builder; :meth:`build` assembles (and
    thereby validates) the frozen request. The builder itself performs
    no validation — all rules live in one place, the request's
    ``__post_init__``.
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._policy: PolicySpec | None = None
        self._cores: int | None = None
        self._max_load: int | None = None
        self._max_orders: int | None = None
        self._choice_mode = "all"
        self._symmetric = False
        self._no_symmetry = False
        self._topology: str | None = None
        self._engine = EngineSpec()
        self._campaign: CampaignLimits | None = None

    def policy(self, name: str, *, margin: int = 2,
               seed: int = 0) -> "RequestBuilder":
        """Select the policy under test."""
        self._policy = PolicySpec(name=name, margin=margin, seed=seed)
        return self

    def scope(self, *, cores: int | None = None,
              max_load: int | None = None) -> "RequestBuilder":
        """Set the verification scope (``None`` keeps the defaults)."""
        self._cores = cores
        self._max_load = max_load
        return self

    def max_orders(self, n: int) -> "RequestBuilder":
        """Cap the racing-steal permutations per round."""
        self._max_orders = n
        return self

    def choice_mode(self, mode: str) -> "RequestBuilder":
        """``"all"`` (adversarial choices) or ``"policy"``."""
        self._choice_mode = mode
        return self

    def symmetric(self, on: bool = True) -> "RequestBuilder":
        """Exploit the flat full-renaming group (legacy flag)."""
        self._symmetric = on
        return self

    def no_symmetry(self, on: bool = True) -> "RequestBuilder":
        """Disable the topology's symmetry quotient."""
        self._no_symmetry = on
        return self

    def topology(self, spec: str | None) -> "RequestBuilder":
        """Set the machine layout (``"numa:NxM"`` / ``"mesh:SxM"``)."""
        self._topology = spec
        return self

    def serial(self) -> "RequestBuilder":
        """Run on the serial engine (the default)."""
        self._engine = EngineSpec(kind="serial")
        return self

    def pool(self, jobs: int) -> "RequestBuilder":
        """Run on the multiprocessing pool engine."""
        self._engine = EngineSpec(kind="pool", jobs=jobs)
        return self

    def distributed(self, workers: int | None = None, *,
                    endpoints: Sequence[str] = (),
                    in_process: bool = False,
                    mode: str = "level-sync",
                    partitions: int | None = None) -> "RequestBuilder":
        """Run on the distributed engine (spawn ``workers`` local
        workers, connect to ``endpoints``, or use in-process
        transports); ``mode="async"`` selects barrier-free
        hash-partitioned exploration."""
        self._engine = EngineSpec(kind="distributed", workers=workers,
                                  endpoints=tuple(endpoints),
                                  in_process=in_process,
                                  mode=mode, partitions=partitions)
        return self

    def engine(self, spec: EngineSpec) -> "RequestBuilder":
        """Set a prebuilt :class:`EngineSpec`."""
        self._engine = spec
        return self

    def campaign(self, *, machines: int = 50, max_cores: int | None = None,
                 rounds: int = 30, seed: int = 0) -> "RequestBuilder":
        """Set the fuzzing budgets of a campaign request."""
        self._campaign = CampaignLimits(machines=machines,
                                        max_cores=max_cores,
                                        rounds=rounds, seed=seed)
        return self

    def build(self) -> VerificationRequest:
        """Assemble and validate the frozen request."""
        return VerificationRequest(
            kind=self._kind,
            policy=self._policy,
            cores=self._cores,
            max_load=self._max_load,
            max_orders=self._max_orders,
            choice_mode=self._choice_mode,
            symmetric=self._symmetric,
            no_symmetry=self._no_symmetry,
            topology=self._topology,
            engine=self._engine,
            campaign=self._campaign,
        )


def with_engine(request: VerificationRequest,
                engine: EngineSpec) -> VerificationRequest:
    """The same request on a different engine (requests are frozen).

    The engine-equivalence guarantee — identical verdicts on every
    engine — makes this the natural way to re-run one request across
    backends; the test suite does exactly that.
    """
    return replace(request, engine=engine)


__all__ = [
    "CampaignLimits",
    "DEFAULT_CAMPAIGN_MAX_CORES",
    "DEFAULT_CORES",
    "DEFAULT_MAX_LOAD",
    "EngineSpec",
    "HIERARCHICAL",
    "PolicySpec",
    "REQUEST_KINDS",
    "RequestBuilder",
    "RequestError",
    "ResolvedRequest",
    "VerificationRequest",
    "ZOO_MAX_ORDERS",
    "build_policy",
    "parse_topology",
    "policy_names",
    "with_engine",
    "TOPOLOGY_POLICIES",
]

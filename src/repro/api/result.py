"""Typed verification results: what a session hands back.

A :class:`VerificationResult` pairs the request that ran with the
verdict, the kind-specific payload (certificate, analysis, zoo matrix,
or campaign report — exactly one is set), summary statistics, and
wall-clock timings. It renders byte-identically to what the legacy CLI
printed for the same run (:meth:`VerificationResult.render` — CI diffs
this against the pre-API output), and round-trips losslessly through
JSON via :mod:`repro.api.report`.

Timings are the one engine-dependent part of a result; everything else
is a pure function of the request. :meth:`VerificationResult.normalized`
zeroes every timing so results from different engines can be compared
for exact equality — the engine-equivalence tests and the CI spec-diff
both compare normalized results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.verify.campaign import CampaignReport
from repro.verify.model_checker import WorkConservationAnalysis
from repro.verify.report import ZooReport
from repro.verify.work_conservation import WorkConservationCertificate

from repro.api.request import VerificationRequest


class Verdict(Enum):
    """What a completed run established.

    ``PROVED``/``REFUTED`` carry proof weight (the pipeline's
    obligations all held / one was refuted); ``CLEAN``/``VIOLATED`` are
    the model-check-only and fuzzing outcomes, which never claim a
    proof.
    """

    PROVED = "proved"
    REFUTED = "refuted"
    CLEAN = "clean"
    VIOLATED = "violated"

    @property
    def ok(self) -> bool:
        """Whether the run found nothing wrong."""
        return self in (Verdict.PROVED, Verdict.CLEAN)


@dataclass(frozen=True)
class ResultStats:
    """Summary counters of one run (``None`` = not applicable to the
    kind).

    Attributes:
        states_explored: distinct abstract states the model checker
            visited (``prove``/``hunt``).
        bad_states: bad states among them.
        policies: zoo lineup size.
        policies_proved: fully proved zoo policies.
        machines: campaign machines fuzzed.
        rounds: campaign adversarial rounds.
        steals: campaign successful steals.
        failures: campaign optimistic failures.
        violations: counterexamples found (refuted obligations, lasso,
            or campaign violations).
    """

    states_explored: int | None = None
    bad_states: int | None = None
    policies: int | None = None
    policies_proved: int | None = None
    machines: int | None = None
    rounds: int | None = None
    steals: int | None = None
    failures: int | None = None
    violations: int = 0


@dataclass(frozen=True)
class StoreProvenance:
    """Where a result sits in the proof store's coverage space.

    The session attaches one of these to every result that ran with a
    store configured: the computed :func:`~repro.store.keys.store_key`,
    the coverage class (the shard count that key folds the engine down
    to — see :mod:`repro.store.keys`), and whether the run was served
    from the store (``hit``) or computed fresh.

    Provenance is session metadata, not proof content: stored entries
    never carry it (the same entry can be a miss for one session and a
    hit for the next), and :func:`~repro.api.report.strip_result_timings`
    drops it alongside the timings.

    Attributes:
        store_key: the content hash the result is filed under.
        shards: the coverage-class shard count (1 = serial-equivalent).
        hit: True when the result was replayed from the store.
        served_from: on a hit, the key of the entry that answered —
            equal to ``store_key`` for exact hits, the engine-normalised
            proof key or a subsuming entry's key otherwise (``None``
            on a miss).
    """

    store_key: str
    shards: int
    hit: bool
    served_from: str | None = None


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of running one :class:`VerificationRequest`.

    Exactly one payload field is set, matching ``request.kind``:
    ``certificate`` (prove), ``analysis`` (hunt), ``zoo`` (zoo), or
    ``campaign`` (campaign).

    Attributes:
        request: the request that produced this result.
        verdict: see :class:`Verdict`.
        stats: summary counters.
        timings: wall-clock seconds by phase (``"total_s"`` always
            present). The only engine-dependent content of a result.
        certificate: the full §4 certificate (prove).
        analysis: the model checker's analysis (hunt).
        zoo: the verdict matrix (zoo).
        campaign: the fuzzing report (campaign).
        provenance: store-key provenance when a store was consulted
            (``None`` otherwise). Like timings, engine/session-dependent
            rather than proof content.
    """

    request: VerificationRequest
    verdict: Verdict
    stats: ResultStats
    timings: dict[str, float]
    certificate: WorkConservationCertificate | None = None
    analysis: WorkConservationAnalysis | None = None
    zoo: ZooReport | None = None
    campaign: CampaignReport | None = None
    provenance: StoreProvenance | None = None

    @property
    def kind(self) -> str:
        """The request kind this result answers."""
        return self.request.kind

    @property
    def ok(self) -> bool:
        """Whether the run found nothing wrong."""
        return self.verdict.ok

    @property
    def exit_code(self) -> int:
        """The process exit code the CLI maps this result to.

        ``prove`` and ``campaign`` gate shell scripts (2 on refutation /
        violations); ``hunt`` and ``zoo`` are reporting commands and
        always exit 0 — exactly the legacy behaviour.
        """
        if self.kind in ("prove", "campaign"):
            return 0 if self.ok else 2
        return 0

    def render(self) -> str:
        """The run's report, byte-identical to the legacy CLI output."""
        if self.certificate is not None:
            return self.certificate.render()
        if self.analysis is not None:
            analysis = self.analysis
            if analysis.violated:
                assert analysis.lasso is not None
                return f"VIOLATION: {analysis.lasso.describe()}"
            return (
                "no violation; exact worst-case N ="
                f" {analysis.worst_case_rounds}"
                f" over {analysis.states_explored} states"
            )
        if self.zoo is not None:
            return self.zoo.render()
        assert self.campaign is not None
        lines = [self.campaign.describe()]
        lines.extend(
            f"  {violation}"
            for violation in self.campaign.violations[:10]
        )
        return "\n".join(lines)

    def normalized(self) -> "VerificationResult":
        """A copy with every timing zeroed.

        Two runs of one request on different engines differ only in
        wall-clock measurements (the determinism guarantee of
        :mod:`repro.verify.parallel` / ``distributed``); their
        normalized results compare equal, and the equivalence tests
        assert exactly that.
        """
        from repro.api.report import strip_result_timings

        return strip_result_timings(self)

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialise losslessly; see :func:`repro.api.report.dumps_result`."""
        from repro.api.report import dumps_result

        return dumps_result(self, indent=indent)

    @staticmethod
    def from_json(text: str) -> "VerificationResult":
        """Parse a result serialised by :meth:`to_json`."""
        from repro.api.report import loads_result

        return loads_result(text)

    def with_timings(self, timings: dict[str, float]) -> "VerificationResult":
        """A copy with replaced timings (results are frozen)."""
        return replace(self, timings=dict(timings))


# ---------------------------------------------------------------------------
# payload -> result assembly
#
# One function per request kind, mapping an engine's raw payload to the
# typed result. The session and the proof store's caching engine both
# assemble results, and byte-identical reports require them to agree on
# every verdict and counter — so the mapping lives here, once.
# ---------------------------------------------------------------------------


def result_from_certificate(
    request: VerificationRequest,
    certificate: WorkConservationCertificate,
) -> "VerificationResult":
    """The ``prove`` result for a §4 pipeline certificate."""
    return VerificationResult(
        request=request,
        verdict=Verdict.PROVED if certificate.proved else Verdict.REFUTED,
        stats=ResultStats(
            states_explored=certificate.analysis.states_explored,
            bad_states=certificate.analysis.bad_states,
            violations=len(certificate.report.refuted),
        ),
        timings={},
        certificate=certificate,
    )


def result_from_analysis(
    request: VerificationRequest,
    analysis: WorkConservationAnalysis,
) -> "VerificationResult":
    """The ``hunt`` result for a model checker analysis."""
    return VerificationResult(
        request=request,
        verdict=Verdict.VIOLATED if analysis.violated else Verdict.CLEAN,
        stats=ResultStats(
            states_explored=analysis.states_explored,
            bad_states=analysis.bad_states,
            violations=1 if analysis.violated else 0,
        ),
        timings={"explore_s": analysis.elapsed_s},
        analysis=analysis,
    )


def result_from_zoo(request: VerificationRequest,
                    zoo: ZooReport) -> "VerificationResult":
    """The ``zoo`` result for a verdict matrix."""
    proved = sum(1 for c in zoo.certificates if c.proved)
    return VerificationResult(
        request=request,
        verdict=(Verdict.PROVED if proved == len(zoo.certificates)
                 else Verdict.REFUTED),
        stats=ResultStats(
            policies=len(zoo.certificates),
            policies_proved=proved,
            violations=sum(len(c.report.refuted)
                           for c in zoo.certificates),
        ),
        timings={},
        zoo=zoo,
    )


def result_from_campaign(request: VerificationRequest,
                         campaign: CampaignReport) -> "VerificationResult":
    """The ``campaign`` result for a fuzzing report."""
    return VerificationResult(
        request=request,
        verdict=Verdict.CLEAN if campaign.clean else Verdict.VIOLATED,
        stats=ResultStats(
            machines=campaign.machines,
            rounds=campaign.rounds,
            steals=campaign.steals,
            failures=campaign.failures,
            violations=len(campaign.violations),
        ),
        timings={},
        campaign=campaign,
    )

"""repro.api — the typed, engine-agnostic verification API.

This package is the stable public surface of the verification stack.
Everything the CLI can do — proofs, counterexample hunts, zoo matrices,
fuzzing campaigns, on any engine — is expressible as data and driven
through three nouns:

* **Request** (:mod:`repro.api.request`): a frozen, validated
  :class:`VerificationRequest` built from primitives (policy name,
  scope, topology spec, engine spec), with a fluent builder.
* **Session** (:mod:`repro.api.session`): runs requests on the engine
  they name, emits structured :class:`ProgressEvent` values (levels
  completed, shards reassigned, violations found) to subscribers.
* **Result** (:mod:`repro.api.result`): a typed
  :class:`VerificationResult` — verdict, certificate/analysis payload,
  stats, timings — rendering byte-identically to the legacy CLI and
  round-tripping losslessly through JSON (:mod:`repro.api.report`).

Engines are adapters behind one protocol (:mod:`repro.api.engine`):
``SerialEngine``, ``PoolEngine`` (``--jobs``), ``DistributedEngine``
(``--distributed``/``--workers``) — callers never import
:mod:`repro.verify.parallel` or :mod:`repro.verify.distributed`
directly, and a future backend is one new ``Engine`` implementation.

Declarative spec files (:mod:`repro.api.spec`, ``examples/specs/``)
describe whole campaigns as reviewable JSON; the CLI's ``run-spec``
command and :func:`run_spec` execute them.

Quickstart::

    from repro.api import Session, VerificationRequest

    request = (VerificationRequest.builder("prove")
               .policy("balance_count", margin=2)
               .scope(cores=3, max_load=3)
               .pool(jobs=4)
               .build())
    result = Session().run(request)
    assert result.ok
    print(result.render())          # the CLI's certificate, verbatim
    blob = result.to_json()         # lossless; see repro.api.report
"""

from repro.api.engine import (
    DistributedEngine,
    Engine,
    EngineError,
    PoolEngine,
    SerialEngine,
    create_engine,
)
from repro.api.report import (
    dumps_result,
    loads_result,
    request_from_dict,
    request_to_dict,
    result_from_dict,
    result_to_dict,
    strip_result_timings,
)
from repro.api.request import (
    CampaignLimits,
    EngineSpec,
    PolicySpec,
    RequestBuilder,
    RequestError,
    VerificationRequest,
    build_policy,
    parse_topology,
    policy_names,
    with_engine,
)
from repro.api.result import (
    ResultStats,
    StoreProvenance,
    Verdict,
    VerificationResult,
    result_from_analysis,
    result_from_campaign,
    result_from_certificate,
    result_from_zoo,
)
from repro.api.session import (
    EventStream,
    LevelCompleted,
    MachineChecked,
    PartitionSplit,
    PolicyFinished,
    PolicyStarted,
    ProgressEvent,
    RequestFailed,
    RequestFinished,
    RequestStarted,
    ResultReused,
    Session,
    ShardReassigned,
    StatesExplored,
    ViolationFound,
    run_request,
)
from repro.api.spec import (
    SpecError,
    SpecFile,
    SpecRun,
    load_spec,
    parse_spec,
    run_spec,
)

__all__ = [
    "CampaignLimits",
    "DistributedEngine",
    "Engine",
    "EngineError",
    "EngineSpec",
    "EventStream",
    "LevelCompleted",
    "MachineChecked",
    "PartitionSplit",
    "PolicyFinished",
    "PolicySpec",
    "PolicyStarted",
    "PoolEngine",
    "ProgressEvent",
    "RequestBuilder",
    "RequestError",
    "RequestFailed",
    "RequestFinished",
    "RequestStarted",
    "ResultReused",
    "ResultStats",
    "SerialEngine",
    "Session",
    "ShardReassigned",
    "SpecError",
    "SpecFile",
    "SpecRun",
    "StatesExplored",
    "StoreProvenance",
    "Verdict",
    "VerificationRequest",
    "VerificationResult",
    "ViolationFound",
    "build_policy",
    "create_engine",
    "dumps_result",
    "load_spec",
    "loads_result",
    "parse_spec",
    "parse_topology",
    "policy_names",
    "request_from_dict",
    "request_to_dict",
    "result_from_analysis",
    "result_from_campaign",
    "result_from_certificate",
    "result_from_dict",
    "result_from_zoo",
    "result_to_dict",
    "run_request",
    "run_spec",
    "strip_result_timings",
    "with_engine",
]

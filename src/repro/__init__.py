"""repro — reproduction of "Towards Proving Optimistic Multicore
Schedulers" (Lepers et al., HotOS 2017).

The library provides:

* the paper's scheduler model — per-core runqueues, the three-step
  filter/choice/steal load-balancing abstraction, lock-free selection
  with optimistic failures (:mod:`repro.core`);
* concrete policies: Listing 1's balancer, the weighted variant, the
  §4.3 counterexample, NUMA/cache-aware choices and the §5 hierarchical
  extension (:mod:`repro.policies`);
* a verification engine standing in for the Leon toolkit: exhaustive
  small-scope lemma checking, explicit-state model checking of the
  concurrent rounds, the potential-function certificate and trace audits
  (:mod:`repro.verify`);
* a policy DSL compiled to executable policies, C scheduling-class
  skeletons and Leon-style Scala (:mod:`repro.dsl`);
* a discrete-event multicore simulator, workloads and baselines that
  reproduce the paper's motivation numbers (:mod:`repro.sim`,
  :mod:`repro.workloads`, :mod:`repro.baselines`).

Quickstart::

    from repro import Machine, LoadBalancer, BalanceCountPolicy
    from repro.verify import StateScope, prove_work_conserving

    machine = Machine.from_loads([0, 1, 2])
    balancer = LoadBalancer(machine, BalanceCountPolicy())
    balancer.run_until_work_conserving()

    cert = prove_work_conserving(BalanceCountPolicy(),
                                 StateScope(n_cores=3, max_load=4))
    assert cert.proved
"""

from repro.core import (
    AttemptOutcome,
    Core,
    CoreSnapshot,
    LoadBalancer,
    Machine,
    Policy,
    RoundRecord,
    RunQueue,
    StealAttempt,
    Task,
    TaskState,
)
from repro.policies import (
    BalanceCountPolicy,
    GreedyHalvingPolicy,
    HierarchicalBalancer,
    NaiveOverloadedPolicy,
    NumaAwareChoicePolicy,
    ProvableWeightedPolicy,
    WeightedBalancePolicy,
)

__version__ = "1.0.0"

__all__ = [
    "AttemptOutcome",
    "Core",
    "CoreSnapshot",
    "LoadBalancer",
    "Machine",
    "Policy",
    "RoundRecord",
    "RunQueue",
    "StealAttempt",
    "Task",
    "TaskState",
    "BalanceCountPolicy",
    "GreedyHalvingPolicy",
    "HierarchicalBalancer",
    "NaiveOverloadedPolicy",
    "NumaAwareChoicePolicy",
    "ProvableWeightedPolicy",
    "WeightedBalancePolicy",
    "__version__",
]

"""Listing 1: the simple thread-count load balancer.

The policy that the paper proves work-conserving:

* ``load`` — the number of threads on the core
  (``ready.size + current.size``);
* ``filter`` — "a core A only steals tasks from a core B if A has at
  least two fewer threads than B" (``stealee.load() - self.load() >= 2``);
* ``steal`` — one task (``stealOneThread``).

The *margin* of 2 is load-bearing: with margin 1, two cores whose loads
differ by one keep exchanging a task (each steal flips the sign of the
difference), so successive rounds oscillate and an idle third core can
starve; with margin 3, a machine like ``[0, 2]`` is stuck — an idle core
coexists with an overloaded one forever. Both degenerate margins are kept
constructible here precisely so the verification layer and the ablation
benchmarks can exhibit those failures; :class:`BalanceCountPolicy` with
the default margin is the proven configuration.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.policy import Policy
from repro.core.cpu import CoreView


class BalanceCountPolicy(Policy):
    """Steal one task when the victim has ``margin`` more threads than us.

    Attributes:
        margin: minimum thread-count gap required to steal; the paper's
            (and the proven) value is 2.
    """

    def __init__(self, margin: int = 2) -> None:
        if margin < 1:
            raise ConfigurationError(f"margin must be >= 1, got {margin}")
        self.margin = margin
        self.name = f"balance_count(margin={margin})"

    def load(self, core: CoreView) -> float:
        """Thread count: Listing 1's ``ready.size + current.size``."""
        return core.nr_threads

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Listing 1 line 6: ``stealee.load() - self.load() >= 2``."""
        return stealee.nr_threads - thief.nr_threads >= self.margin

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        """Listing 1 line 13: steal exactly one thread."""
        return 1


class GreedyHalvingPolicy(BalanceCountPolicy):
    """A faster-converging variant: steal half of the surplus.

    Same filter as :class:`BalanceCountPolicy`; the steal amount is
    ``(stealee.load - thief.load) // 2``, which equalises the pair in one
    operation instead of one task per round. Kept as an extension-point
    demonstration: the steal-soundness obligation (victim not left idle,
    pairwise gap shrinks) still holds, so the work-conservation proof
    carries over with a smaller round bound.
    """

    def __init__(self, margin: int = 2) -> None:
        super().__init__(margin=margin)
        self.name = f"greedy_halving(margin={margin})"

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        """Half the gap, rounded down; at least one task."""
        gap = stealee.nr_threads - thief.nr_threads
        return max(1, gap // 2)

"""NUMA- and cache-aware *choice* functions.

The paper's central engineering claim (Section 3.1, restated in the
conclusion) is that all placement intelligence can live in step 2 — the
choice — without touching the proofs: "it is possible to implement
cache-aware or NUMA-aware thread placements in the second step of the
load balancing without adding any complexity to the proofs. ... The exact
choice of the core does not matter for the correctness proof."

These policies therefore reuse Listing 1's *proven filter* verbatim and
only override :meth:`~repro.core.policy.Policy.choose`. The verification
suite checks them with the exact same obligations as the base policy —
and additionally model-checks them under a *choice oracle* that ranges
over every candidate, which is the strongest possible form of the
choice-irrelevance claim.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cpu import CoreSnapshot, CoreView
from repro.policies.balance_count import BalanceCountPolicy
from repro.topology.numa import NumaTopology


class NumaAwareChoicePolicy(BalanceCountPolicy):
    """Prefer stealing from the thief's own NUMA node.

    Candidates are ranked by (same node first, then highest load, then
    lowest core id). Stealing locally keeps the migrated task's memory on
    its node; stealing remotely is still allowed — the filter decides
    *whether*, the choice only decides *where from* — so work conservation
    is unaffected.

    Attributes:
        topology: the machine layout used to compare nodes.
        margin: inherited Listing 1 margin.
    """

    #: Distance-based choice: sound only under distance-preserving
    #: renamings (the topology's own symmetry group).
    choice_invariance = "distance"

    def __init__(self, topology: NumaTopology, margin: int = 2) -> None:
        super().__init__(margin=margin)
        self.topology = topology
        self.name = f"numa_choice(margin={margin}, topo={topology.name})"

    def choose(self, thief: CoreView,
               candidates: Sequence[CoreSnapshot]) -> CoreSnapshot:
        """Rank by locality first, then by load (descending), then id."""
        thief_node = self.topology.node_of(thief.cid)

        def rank(candidate: CoreSnapshot) -> tuple[int, int, int]:
            distance = self.topology.distances[thief_node][
                self.topology.node_of(candidate.cid)
            ]
            return (distance, -candidate.nr_threads, candidate.cid)

        return min(candidates, key=rank)


class LeastMigrationsChoicePolicy(BalanceCountPolicy):
    """Cache-aware choice: steal the victim whose task last ran nearby.

    Approximates "giving priority to some core to improve cache locality"
    (Section 3.1): among filtered candidates, prefer the one at the
    smallest NUMA distance and, within a node, the closest core id (a
    proxy for shared LLC in our node-major core numbering).

    Attributes:
        topology: the machine layout used to compute distances.
    """

    #: Distance-based choice (see NumaAwareChoicePolicy).
    choice_invariance = "distance"

    def __init__(self, topology: NumaTopology, margin: int = 2) -> None:
        super().__init__(margin=margin)
        self.topology = topology
        self.name = f"cache_choice(margin={margin}, topo={topology.name})"

    def choose(self, thief: CoreView,
               candidates: Sequence[CoreSnapshot]) -> CoreSnapshot:
        """Rank by (distance, |cid gap|, -load)."""
        def rank(candidate: CoreSnapshot) -> tuple[int, int, int]:
            distance = self.topology.distance(thief.cid, candidate.cid)
            return (
                distance,
                abs(candidate.cid - thief.cid),
                -candidate.nr_threads,
            )

        return min(candidates, key=rank)


class RandomChoicePolicy(BalanceCountPolicy):
    """Seeded-random choice among candidates.

    The degenerate end of the choice spectrum: if the proofs really are
    choice-irrelevant they must hold for a uniformly random choice too.
    Deterministic given the seed, so verification runs are reproducible.
    """

    #: Seeded-random choice: equivariant under no renaming.
    choice_invariance = "none"

    def __init__(self, seed: int, margin: int = 2) -> None:
        super().__init__(margin=margin)
        import random

        self._rng = random.Random(seed)
        self.seed = seed
        self.name = f"random_choice(seed={seed}, margin={margin})"

    def choose(self, thief: CoreView,
               candidates: Sequence[CoreSnapshot]) -> CoreSnapshot:
        """Pick uniformly at random among the filtered candidates."""
        return candidates[self._rng.randrange(len(candidates))]

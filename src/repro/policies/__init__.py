"""Scheduling policies expressed in the three-step abstraction.

The package gathers the paper's policies (Listing 1, the weighted
variant, the §4.3 counterexample), placement-aware choice functions, the
§5 hierarchical extension, and deliberately broken mutants used to test
the verifier's teeth.
"""

from repro.policies.balance_count import BalanceCountPolicy, GreedyHalvingPolicy
from repro.policies.hierarchical import (
    GroupView,
    HierarchicalBalancer,
    ScopedPolicy,
    group_view,
)
from repro.policies.naive import (
    GreedyReadyPolicy,
    InvertedFilterPolicy,
    NaiveOverloadedPolicy,
    OverStealingPolicy,
)
from repro.policies.numa_aware import (
    LeastMigrationsChoicePolicy,
    NumaAwareChoicePolicy,
    RandomChoicePolicy,
)
from repro.policies.weighted import (
    MIN_TASK_WEIGHT,
    ProvableWeightedPolicy,
    WeightedBalancePolicy,
)

__all__ = [
    "BalanceCountPolicy",
    "GreedyHalvingPolicy",
    "GroupView",
    "HierarchicalBalancer",
    "ScopedPolicy",
    "group_view",
    "GreedyReadyPolicy",
    "InvertedFilterPolicy",
    "NaiveOverloadedPolicy",
    "OverStealingPolicy",
    "LeastMigrationsChoicePolicy",
    "NumaAwareChoicePolicy",
    "RandomChoicePolicy",
    "MIN_TASK_WEIGHT",
    "ProvableWeightedPolicy",
    "WeightedBalancePolicy",
]

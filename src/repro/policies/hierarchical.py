"""Hierarchical load balancing (the paper's Section 5 extension).

"We aim to extend these abstractions to include hierarchical load
balancing, for instance to allow balancing load between groups of cores,
and then inside groups, instead of balancing load directly between
individual cores."

The key observation that makes the extension cheap is that a *group of
cores is itself a core-shaped thing*: it has a thread count, a ready
count and a weighted load. :class:`GroupView` exposes exactly the
:class:`~repro.core.cpu.CoreView` protocol, so Listing 1's filter — and,
more importantly, Listing 2's Lemma1 and the potential-function argument —
apply to the *inter-group* level verbatim. The hierarchical round is then:

1. **Inter-group round**: one three-step balancing operation per group,
   with groups as the "cores": filter on group thread totals, choose the
   most loaded group, steal one task from the victim group's most loaded
   core into the thief group's least loaded core (locked + re-checked,
   exactly like the flat balancer).
2. **Intra-group rounds**: a standard flat round inside each group, using
   :class:`ScopedPolicy` to restrict the filter to group members.

Both levels emit ordinary :class:`~repro.core.balancer.StealAttempt`
records, so the metrics and the failure-attribution audit treat
hierarchical rounds like any other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.balancer import (
    AttemptOutcome,
    LoadBalancer,
    RoundRecord,
    StealAttempt,
)
from repro.core.cpu import CoreSnapshot, CoreView
from repro.core.errors import ConfigurationError
from repro.core.machine import Machine
from repro.core.policy import Policy
from repro.core.task import TaskState
from repro.policies.balance_count import BalanceCountPolicy
from repro.sim.locks import LockManager
from repro.topology.domains import SchedDomain, flat_groups


class ScopedPolicy(Policy):
    """Restrict a base policy's filter to an allowed victim set.

    Used for intra-group rounds: a core may only steal from cores of its
    own group. Everything else — load metric, choice, steal amount —
    delegates to the base policy, so the scoped policy inherits its proof
    obligations (restricting the candidate set can only shrink the filter,
    which preserves completeness; existence is re-checked per group by the
    hierarchical verification).

    Attributes:
        base: the policy being scoped.
        allowed: core ids a thief in this scope may steal from.
    """

    #: The filter consults victim cids (``allowed``) asymmetrically —
    #: not expressible as the kernel's symmetric pair mask.
    filter_invariance = "none"

    def __init__(self, base: Policy, allowed: Sequence[int]) -> None:
        self.base = base
        self.allowed = frozenset(allowed)
        self.name = f"scoped({base.name})"

    def load(self, core: CoreView) -> float:
        return self.base.load(core)

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Base filter, restricted to in-scope victims."""
        return stealee.cid in self.allowed and self.base.can_steal(
            thief, stealee
        )

    def choose(self, thief: CoreView,
               candidates: Sequence[CoreSnapshot]) -> CoreSnapshot:
        return self.base.choose(thief, candidates)

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        return self.base.steal_amount(thief, stealee)


@dataclass(frozen=True)
class GroupView:
    """A group of cores exposed through the :class:`CoreView` protocol.

    ``nr_threads``/``nr_ready``/``weighted_load`` are the group totals, so
    a policy filter written for cores applies to groups unchanged — the
    formal backbone of the Section 5 extension.

    Attributes:
        cid: group id (plays the role of a core id at the group level).
        cores: member core ids.
        nr_ready: total ready tasks across members.
        running: number of members with a current task.
        weighted_load: total weighted load across members.
        node: NUMA node of the group (groups never span nodes here).
    """

    cid: int
    cores: tuple[int, ...]
    nr_ready: int
    running: int
    weighted_load: int
    node: int = 0

    @property
    def has_current(self) -> bool:
        """A group 'has current' when any member is running a task."""
        return self.running > 0

    @property
    def nr_threads(self) -> int:
        """Total threads across the group's members."""
        return self.nr_ready + self.running


def group_view(machine: Machine, gid: int,
               cores: Sequence[int]) -> GroupView:
    """Build the :class:`GroupView` of ``cores`` from live machine state."""
    members = [machine.core(cid) for cid in cores]
    return GroupView(
        cid=gid,
        cores=tuple(cores),
        nr_ready=sum(core.nr_ready for core in members),
        running=sum(1 for core in members if core.has_current),
        weighted_load=sum(core.weighted_load for core in members),
        node=members[0].node if members else 0,
    )


class HierarchicalBalancer:
    """Two-level balancer: between groups, then inside groups.

    Exposes the same ``run_round`` / ``run_until_work_conserving``
    surface as :class:`~repro.core.balancer.LoadBalancer`, so simulations
    and benchmarks can swap it in directly.

    Attributes:
        machine: the machine being balanced.
        groups: tuple of core-id tuples, one per leaf group of the domain
            tree.
        group_policy: filter/steal policy applied at the group level
            (on :class:`GroupView` values).
        intra_policy: policy applied inside each group.
    """

    def __init__(self, machine: Machine, domains: SchedDomain,
                 group_policy: Policy | None = None,
                 intra_policy: Policy | None = None,
                 keep_history: bool = True) -> None:
        self.machine = machine
        self.groups = tuple(flat_groups(domains))
        if not self.groups:
            raise ConfigurationError("domain tree has no leaf groups")
        self.group_policy = group_policy or BalanceCountPolicy(margin=2)
        self.intra_policy = intra_policy or BalanceCountPolicy(margin=2)
        self.locks = LockManager(machine.n_cores)
        self.keep_history = keep_history
        self.rounds: list[RoundRecord] = []
        self.round_index = 0
        self._intra_balancers = [
            LoadBalancer(
                machine,
                ScopedPolicy(self.intra_policy, cores),
                keep_history=False,
            )
            for cores in self.groups
        ]

    # ------------------------------------------------------------------
    # inter-group phase
    # ------------------------------------------------------------------

    def group_views(self) -> list[GroupView]:
        """Current :class:`GroupView` of every leaf group."""
        return [
            group_view(self.machine, gid, cores)
            for gid, cores in enumerate(self.groups)
        ]

    def _agent_core(self, cores: Sequence[int]) -> int:
        """The group's thief agent: its least loaded member core."""
        return min(cores, key=lambda cid: (
            self.machine.core(cid).nr_threads, cid
        ))

    def _donor_core(self, cores: Sequence[int]) -> int | None:
        """The victim group's donor: its most loaded member with a ready task."""
        with_ready = [
            cid for cid in cores if self.machine.core(cid).nr_ready >= 1
        ]
        if not with_ready:
            return None
        return max(with_ready, key=lambda cid: (
            self.machine.core(cid).nr_threads, -cid
        ))

    def _inter_group_round(self, attempts: list[StealAttempt]) -> None:
        """One three-step balancing operation per group, groups as cores."""
        views = self.group_views()
        intents: list[tuple[int, int]] = []
        for thief_group in views:
            candidates = [
                v for v in views
                if v.cid != thief_group.cid
                and self.group_policy.can_steal(thief_group, v)
            ]
            if not candidates:
                continue
            victim = max(
                candidates, key=lambda v: (v.nr_threads, -v.cid)
            )
            intents.append((thief_group.cid, victim.cid))

        for thief_gid, victim_gid in intents:
            attempts.append(self._execute_group_steal(thief_gid, victim_gid))

    def _execute_group_steal(self, thief_gid: int,
                             victim_gid: int) -> StealAttempt:
        """Locked, re-checked migration of one task between groups."""
        thief_cid = self._agent_core(self.groups[thief_gid])
        donor_cid = self._donor_core(self.groups[victim_gid])
        if donor_cid is None:
            return StealAttempt(
                round_index=self.round_index,
                thief=thief_cid,
                victim=None,
                outcome=AttemptOutcome.EMPTY_VICTIM,
            )
        with self.locks.pair(thief_cid, thief_cid, donor_cid) as locked:
            if not locked:
                return StealAttempt(
                    round_index=self.round_index,
                    thief=thief_cid,
                    victim=donor_cid,
                    outcome=AttemptOutcome.LOCK_BUSY,
                )
            live_thief = group_view(
                self.machine, thief_gid, self.groups[thief_gid]
            )
            live_victim = group_view(
                self.machine, victim_gid, self.groups[victim_gid]
            )
            if not self.group_policy.can_steal(live_thief, live_victim):
                return StealAttempt(
                    round_index=self.round_index,
                    thief=thief_cid,
                    victim=donor_cid,
                    outcome=AttemptOutcome.RECHECK_FAILED,
                )
            donor = self.machine.core(donor_cid)
            if donor.runqueue.size == 0:
                return StealAttempt(
                    round_index=self.round_index,
                    thief=thief_cid,
                    victim=donor_cid,
                    outcome=AttemptOutcome.EMPTY_VICTIM,
                )
            task = donor.runqueue.pop_tail()
            task.state = TaskState.READY
            self.machine.core(thief_cid).runqueue.push(task)
            return StealAttempt(
                round_index=self.round_index,
                thief=thief_cid,
                victim=donor_cid,
                outcome=AttemptOutcome.SUCCESS,
                moved_task_ids=(task.tid,),
            )

    # ------------------------------------------------------------------
    # full hierarchical round
    # ------------------------------------------------------------------

    def run_round(self) -> RoundRecord:
        """Inter-group phase, then one intra-group round per group."""
        loads_before = tuple(self.machine.loads())
        attempts: list[StealAttempt] = []
        self._inter_group_round(attempts)
        for gid, balancer in enumerate(self._intra_balancers):
            balancer.round_index = self.round_index
            record = balancer.run_round(participants=list(self.groups[gid]))
            attempts.extend(record.attempts)
        record = RoundRecord(
            index=self.round_index,
            loads_before=loads_before,
            loads_after=tuple(self.machine.loads()),
            attempts=attempts,
        )
        self.round_index += 1
        if self.keep_history:
            self.rounds.append(record)
        return record

    def run_until_work_conserving(self, max_rounds: int = 1000) -> int | None:
        """Rounds until no core is idle while any core is overloaded.

        Returns:
            Rounds executed, or ``None`` if ``max_rounds`` was exhausted.
        """
        for done in range(max_rounds + 1):
            if self.machine.is_work_conserving_state():
                return done
            if done == max_rounds:
                break
            self.run_round()
        return None

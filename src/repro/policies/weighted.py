"""Niceness-weighted load balancing.

Section 3.1: "CFS considers some threads more important (different
niceness), and gives them a higher share of CPU resources. In this
context, the load balancer tries to balance the number of threads weighted
by their importance." Section 4.2 reports that Lemma1 "is still
automatically verified for a load balancer that tries to balance the
number of threads weighted by their importance" — this module is that
policy.

The filter combines two conditions:

* a *weighted imbalance*: the victim's weighted load exceeds the thief's
  by at least ``margin_weight``; and
* a *structural surplus*: the victim has at least two threads.

The second conjunct is what keeps Lemma1's completeness direction true: a
core running a single very heavy thread has enormous weighted load but
nothing stealable (the running thread cannot be migrated), so a filter
based on weights alone would select victims that can never yield a task.
The default ``margin_weight`` is twice the smallest possible task weight,
which keeps the existence direction true as well: any overloaded core
(two or more threads) outweighs an idle core by at least that much,
whatever the niceness mix.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.policy import Policy
from repro.core.cpu import CoreView, is_overloaded
from repro.core.task import MAX_NICE, nice_to_weight

#: The smallest weight a task can have (nice 19).
MIN_TASK_WEIGHT = nice_to_weight(MAX_NICE)


class WeightedBalancePolicy(Policy):
    """Balance CFS-weighted load, stealing only structurally-safe victims.

    Attributes:
        margin_weight: minimum weighted-load gap required to steal.
            Defaults to ``2 * MIN_TASK_WEIGHT`` so an idle core can always
            steal from any overloaded core (Lemma1 existence direction).
    """

    def __init__(self, margin_weight: int = 2 * MIN_TASK_WEIGHT) -> None:
        if margin_weight < 1:
            raise ConfigurationError(
                f"margin_weight must be >= 1, got {margin_weight}"
            )
        self.margin_weight = margin_weight
        self.name = f"weighted_balance(margin_weight={margin_weight})"

    def load(self, core: CoreView) -> float:
        """CFS-weighted load of the core."""
        return core.weighted_load

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Weighted imbalance and a structurally overloaded victim.

        The ``is_overloaded`` conjunct guarantees the victim has a ready
        (hence stealable) task and prevents weight-only selection of
        single-heavy-thread cores.
        """
        imbalance = stealee.weighted_load - thief.weighted_load
        return imbalance >= self.margin_weight and is_overloaded(stealee)

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        """One task, as in Listing 1; weighted variants still move units."""
        return 1


class ProvableWeightedPolicy(WeightedBalancePolicy):
    """Weighted balancing strengthened to satisfy the concurrent proof.

    :class:`WeightedBalancePolicy` passes Lemma1 and is correct in the
    sequential setting of §4.2, but its filter admits steals between cores
    whose *thread counts* differ by only one; under adversarial
    concurrency such steals can ping-pong (the §4.3 pathology reappears
    one level up), so the potential-function certificate does not apply.
    This reproduction's verifier demonstrates exactly that — see the E6
    benchmark and EXPERIMENTS.md.

    This variant adds Listing 1's thread-count margin as an extra
    conjunct. Every steal then shrinks the thread-count gap by two, the
    potential function over thread counts strictly decreases, and the full
    work-conservation certificate goes through while the policy still
    prefers weight-balancing victims.

    Attributes:
        margin: thread-count margin (Listing 1's 2).
        margin_weight: inherited weighted-imbalance margin.
    """

    def __init__(self, margin: int = 2,
                 margin_weight: int = 2 * MIN_TASK_WEIGHT) -> None:
        super().__init__(margin_weight=margin_weight)
        if margin < 2:
            raise ConfigurationError(
                f"margin must be >= 2 for the concurrent proof, got {margin}"
            )
        self.margin = margin
        self.name = (
            f"provable_weighted(margin={margin},"
            f" margin_weight={margin_weight})"
        )

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Weighted imbalance *and* Listing 1's thread-count margin."""
        count_gap = stealee.nr_threads - thief.nr_threads
        return (
            count_gap >= self.margin
            and super().can_steal(thief, stealee)
        )

"""Deliberately broken filters: the paper's counterexamples.

Section 4.3 shows that replacing Listing 1's filter with

    def canSteal(stealee) = { stealee.load() >= 2 }

"makes our algorithm incorrect in the presence of failures": on a
three-core machine ``[idle, 1 thread, 2 threads]``, the two non-idle cores
can bounce a thread back and forth forever while the idle core's steals
always fail. These policies exist so the verification layer has real bugs
to find — the model checker must rediscover the ping-pong lasso
automatically (experiment E5), and Lemma1 must flag the filters that are
statically unsound (experiment E3).
"""

from __future__ import annotations

from repro.core.policy import Policy
from repro.core.cpu import CoreView


class NaiveOverloadedPolicy(Policy):
    """§4.3's broken filter: steal from anyone with two or more threads.

    The filter ignores the thief's own load, so a core with one thread
    will happily steal from a core with two, swapping their roles and
    recreating the imbalance elsewhere. Lemma1 *holds* for this filter
    when the thief is idle — the bug is invisible to the sequential
    analysis and only the concurrent model check exposes it, which is
    precisely the paper's point.
    """

    name = "naive_overloaded"

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """``stealee.load() >= 2`` — no comparison with the thief."""
        return stealee.nr_threads >= 2

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        return 1


class GreedyReadyPolicy(Policy):
    """Steal from any core with a ready task, however small the imbalance.

    A "work stealing without a filter" strawman: the filter only checks
    that the victim has something stealable. Equal-load cores steal from
    each other, the potential function does not decrease, and adversarial
    orderings starve idle cores. Used by the random-steal baseline and the
    margin ablation.
    """

    name = "greedy_ready"

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Victim merely needs a ready (stealable) task."""
        return stealee.nr_ready >= 1

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        return 1


class InvertedFilterPolicy(Policy):
    """A mutation that steals from *less* loaded cores.

    Exists for mutation-testing the lemma checker: Lemma1's completeness
    direction ("thief only selects overloaded cores") must refute this
    filter immediately.
    """

    name = "inverted_filter"

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Backwards on purpose: victim has *fewer* threads than thief."""
        return thief.nr_threads - stealee.nr_threads >= 2

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        return 1


class OverStealingPolicy(Policy):
    """A mutation that drains the victim's entire runqueue.

    Filter is Listing 1's (sound); the bug is in step 3: stealing
    everything can leave the victim with only its running task — or, for
    an undispatched victim, completely idle — and can overshoot the thief
    past the victim, breaking the potential-decrease certificate. The
    steal-soundness obligation must refute this policy.
    """

    name = "over_stealing"

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Listing 1's sound filter."""
        return stealee.nr_threads - thief.nr_threads >= 2

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        """Take every ready task the victim has."""
        return max(1, stealee.nr_ready)

"""Structured round traces: inspectable, diffable, exportable.

Verification results are only trustworthy if the executions behind them
can be examined. This module converts balancer histories
(:class:`~repro.core.balancer.RoundRecord` lists) into plain-dict event
streams — JSON-serialisable, stable field names — plus round-trip
loading, so traces can be stored next to benchmark results, diffed across
runs, and replayed through the audit functions offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.balancer import AttemptOutcome, RoundRecord, StealAttempt


def attempt_to_dict(attempt: StealAttempt) -> dict:
    """Flatten one steal attempt into a JSON-safe dict."""
    return {
        "round": attempt.round_index,
        "thief": attempt.thief,
        "victim": attempt.victim,
        "outcome": attempt.outcome.value,
        "moved": list(attempt.moved_task_ids),
        "observed_victim_version": attempt.observed_victim_version,
        "live_victim_version": attempt.live_victim_version,
        "invalidated_by": list(attempt.invalidated_by),
        "candidates": list(attempt.candidates),
    }


def attempt_from_dict(data: dict) -> StealAttempt:
    """Inverse of :func:`attempt_to_dict`."""
    return StealAttempt(
        round_index=data["round"],
        thief=data["thief"],
        victim=data["victim"],
        outcome=AttemptOutcome(data["outcome"]),
        moved_task_ids=tuple(data["moved"]),
        observed_victim_version=data["observed_victim_version"],
        live_victim_version=data["live_victim_version"],
        invalidated_by=tuple(data["invalidated_by"]),
        candidates=tuple(data["candidates"]),
    )


def round_to_dict(record: RoundRecord) -> dict:
    """Flatten one round record into a JSON-safe dict."""
    return {
        "index": record.index,
        "loads_before": list(record.loads_before),
        "loads_after": list(record.loads_after),
        "attempts": [attempt_to_dict(a) for a in record.attempts],
    }


def round_from_dict(data: dict) -> RoundRecord:
    """Inverse of :func:`round_to_dict`."""
    return RoundRecord(
        index=data["index"],
        loads_before=tuple(data["loads_before"]),
        loads_after=tuple(data["loads_after"]),
        attempts=[attempt_from_dict(a) for a in data["attempts"]],
    )


def dump_trace(rounds: Iterable[RoundRecord]) -> str:
    """Serialise a round history as JSON Lines (one round per line)."""
    return "\n".join(
        json.dumps(round_to_dict(record), separators=(",", ":"))
        for record in rounds
    )


def load_trace(text: str) -> list[RoundRecord]:
    """Parse a JSON Lines trace back into round records."""
    return [
        round_from_dict(json.loads(line))
        for line in text.splitlines() if line.strip()
    ]


@dataclass(frozen=True)
class TraceStats:
    """Headline numbers of a trace, for summaries and regressions.

    Attributes:
        rounds: number of rounds.
        successes: successful steals.
        failures: optimistic failures.
        tasks_moved: total migrated tasks.
        quiet_rounds: rounds with no steal intent anywhere.
        first_quiet_round: index of the first quiet round, or ``None``.
    """

    rounds: int
    successes: int
    failures: int
    tasks_moved: int
    quiet_rounds: int
    first_quiet_round: int | None


def trace_stats(rounds: Sequence[RoundRecord]) -> TraceStats:
    """Summarise a round history."""
    successes = sum(len(r.successes) for r in rounds)
    failures = sum(len(r.failures) for r in rounds)
    moved = sum(r.tasks_moved for r in rounds)
    quiet = [r.index for r in rounds if r.quiet]
    return TraceStats(
        rounds=len(rounds),
        successes=successes,
        failures=failures,
        tasks_moved=moved,
        quiet_rounds=len(quiet),
        first_quiet_round=quiet[0] if quiet else None,
    )

"""Metrics: wasted-core accounting, throughput, latency, fairness, and
report statistics."""

from repro.metrics.collectors import MetricsCollector
from repro.metrics.fairness import FairnessReport, fairness_report, jain_index
from repro.metrics.latency import LatencyTracker
from repro.metrics.stats import (
    Summary,
    percentile,
    relative_loss,
    render_table,
    speedup,
    summarize,
)

__all__ = [
    "MetricsCollector",
    "FairnessReport",
    "fairness_report",
    "jain_index",
    "LatencyTracker",
    "Summary",
    "percentile",
    "relative_loss",
    "render_table",
    "speedup",
    "summarize",
]

"""Runtime metrics for simulated schedules.

The paper's motivating measurements are *wasted-core* measurements: cores
sitting idle while threads wait in runqueues (Lozi et al.'s "decade of
wasted cores"), and their downstream effects — longer makespans for
barrier-synchronised applications, lower throughput for databases. The
:class:`MetricsCollector` tracks exactly those quantities tick by tick:

* ``bad_ticks`` — ticks during which the machine violated the per-state
  work-conservation condition (somebody idle while somebody overloaded);
* ``wasted_core_ticks`` — the integral of idle cores over bad ticks (the
  area of the "wasted cores" curve);
* throughput accounting (work units, finished tasks) and migration
  counts for the locality experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.machine import Machine


@dataclass
class MetricsCollector:
    """Accumulates per-tick scheduler quality metrics.

    Attributes:
        ticks: simulated ticks observed.
        busy_core_ticks: total core-ticks spent running a task.
        idle_core_ticks: total core-ticks with no current task.
        bad_ticks: ticks where some core idled while another was
            overloaded.
        wasted_core_ticks: idle core-ticks accumulated during bad ticks —
            the paper's wasted cores, integrated over time.
        completed_work: task work units executed.
        warmup_ticks: core-ticks lost to post-migration cache warm-up.
        finished_tasks: tasks that ran to completion.
        record_series: when True, keeps per-tick load vectors (memory
            grows linearly with ticks; meant for plots and debugging).
        load_series: recorded per-tick load vectors.
    """

    ticks: int = 0
    busy_core_ticks: int = 0
    idle_core_ticks: int = 0
    bad_ticks: int = 0
    wasted_core_ticks: int = 0
    completed_work: int = 0
    warmup_ticks: int = 0
    finished_tasks: int = 0
    record_series: bool = False
    load_series: list[tuple[int, ...]] = field(default_factory=list)

    def on_tick(self, machine: Machine) -> None:
        """Record one tick of machine state (called after execution)."""
        self.ticks += 1
        idle = 0
        busy = 0
        for core in machine.cores:
            if core.has_current:
                busy += 1
            else:
                idle += 1
        self.busy_core_ticks += busy
        self.idle_core_ticks += idle
        overloaded = any(core.overloaded for core in machine.cores)
        truly_idle = sum(1 for core in machine.cores if core.idle)
        if truly_idle and overloaded:
            self.bad_ticks += 1
            self.wasted_core_ticks += truly_idle
        if self.record_series:
            self.load_series.append(tuple(machine.loads()))

    def on_work(self, units: int) -> None:
        """Record ``units`` of useful task execution."""
        self.completed_work += units

    def on_warmup(self, units: int = 1) -> None:
        """Record core time burned re-warming caches after a migration."""
        self.warmup_ticks += units

    def on_task_finished(self) -> None:
        """Record one task running to completion."""
        self.finished_tasks += 1

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def utilization(self) -> float:
        """Fraction of core-ticks spent running tasks (0..1)."""
        total = self.busy_core_ticks + self.idle_core_ticks
        return self.busy_core_ticks / total if total else 0.0

    @property
    def waste_fraction(self) -> float:
        """Wasted core-ticks as a fraction of all core-ticks."""
        total = self.busy_core_ticks + self.idle_core_ticks
        return self.wasted_core_ticks / total if total else 0.0

    def throughput(self) -> float:
        """Finished tasks per tick (the database experiments' metric)."""
        return self.finished_tasks / self.ticks if self.ticks else 0.0

    def summary(self) -> dict[str, float]:
        """Flat dict of headline numbers for tables and benchmarks."""
        return {
            "ticks": float(self.ticks),
            "utilization": self.utilization,
            "bad_ticks": float(self.bad_ticks),
            "wasted_core_ticks": float(self.wasted_core_ticks),
            "waste_fraction": self.waste_fraction,
            "completed_work": float(self.completed_work),
            "finished_tasks": float(self.finished_tasks),
            "throughput": self.throughput(),
            "warmup_ticks": float(self.warmup_ticks),
        }

"""Small statistics helpers for benchmark reporting.

Kept dependency-light (plain ``statistics``/``math``) so benchmark output
code has no heavyweight imports; numpy is reserved for the workload
generators that genuinely need vectorised sampling.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample.

    Attributes:
        n: sample size.
        mean: arithmetic mean.
        stdev: sample standard deviation (0.0 when n < 2).
        minimum: smallest observation.
        median: 50th percentile.
        p95: 95th percentile (nearest-rank).
        maximum: largest observation.
    """

    n: int
    mean: float
    stdev: float
    minimum: float
    median: float
    p95: float
    maximum: float


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Raises:
        ValueError: on an empty sample or out-of-range ``q``.
    """
    if not values:
        raise ValueError("percentile of empty sample")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    Raises:
        ValueError: on an empty sample.
    """
    if not values:
        raise ValueError("summary of empty sample")
    return Summary(
        n=len(values),
        mean=statistics.fmean(values),
        stdev=statistics.stdev(values) if len(values) > 1 else 0.0,
        minimum=min(values),
        median=statistics.median(values),
        p95=percentile(values, 95),
        maximum=max(values),
    )


def speedup(baseline: float, contender: float) -> float:
    """How many times faster ``contender`` is than ``baseline``.

    For durations (lower is better): ``speedup(slow, fast) > 1``.

    Raises:
        ValueError: when ``contender`` is not positive.
    """
    if contender <= 0:
        raise ValueError(f"contender must be > 0, got {contender}")
    return baseline / contender


def relative_loss(good: float, bad: float) -> float:
    """Fractional throughput loss of ``bad`` versus ``good`` (0..1).

    For rates (higher is better): the paper's "up to 25% decrease in
    throughput" is ``relative_loss(good, bad) ≈ 0.25``.

    Raises:
        ValueError: when ``good`` is not positive.
    """
    if good <= 0:
        raise ValueError(f"good must be > 0, got {good}")
    return (good - bad) / good


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Monospace table rendering for benchmark stdout.

    Column widths adapt to content; numbers are right-aligned, text
    left-aligned, matching how the paper's tables read.
    """
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows))
        if text_rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str], pad: str = " ") -> str:
        return " | ".join(
            cell.rjust(widths[i]) if _numeric(cells, i, text_rows)
            else cell.ljust(widths[i])
            for i, cell in enumerate(cells)
        )

    sep = "-+-".join("-" * w for w in widths)
    out = [line(list(headers)), sep]
    out.extend(line(r) for r in text_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _numeric(cells: Sequence[str], i: int,
             rows: Sequence[Sequence[str]]) -> bool:
    sample = rows[0][i] if rows else cells[i]
    try:
        float(sample)
        return True
    except ValueError:
        return False

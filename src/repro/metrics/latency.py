"""Scheduling-latency tracking: the raw material of *reactivity*.

Work conservation is one of three performance properties the paper's
introduction names; the second is reactivity — "to have a bound on the
delay to schedule ready threads". This module measures that delay on
simulator runs: for every task, the time between becoming ready (enqueued
on some runqueue) and next occupying a CPU. Migrations between runqueues
do *not* reset the clock — a stolen task has been waiting since it first
became ready, wherever it waited.

:mod:`repro.verify.reactivity` turns these measurements into an audited
bound derived from the work-conservation certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.stats import Summary, summarize


@dataclass
class LatencyTracker:
    """Records ready-to-dispatch delays per task.

    Attributes:
        samples: completed wait intervals, in ticks, in completion order.
        waiting_since: tick at which each currently-waiting task became
            ready (keyed by tid).
    """

    samples: list[int] = field(default_factory=list)
    waiting_since: dict[int, int] = field(default_factory=dict)

    def on_enqueued(self, tid: int, now: int) -> None:
        """A task became ready at tick ``now``.

        Idempotent for tasks already waiting: a steal re-enqueues the
        task elsewhere, but its wait began at the original enqueue.
        """
        self.waiting_since.setdefault(tid, now)

    def on_dispatched(self, tid: int, now: int) -> None:
        """A task started running at tick ``now``."""
        started = self.waiting_since.pop(tid, None)
        if started is not None:
            self.samples.append(now - started)

    def on_departed(self, tid: int) -> None:
        """A waiting task left the scheduler (churn); drop its clock."""
        self.waiting_since.pop(tid, None)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def max_latency(self) -> int:
        """Largest completed wait, 0 when no sample exists."""
        return max(self.samples, default=0)

    def still_waiting(self, now: int) -> dict[int, int]:
        """Current wait duration of every still-queued task."""
        return {
            tid: now - since for tid, since in self.waiting_since.items()
        }

    def worst_outstanding(self, now: int) -> int:
        """Longest in-progress wait — what a reactivity bound must cover
        even for tasks that never got dispatched before the run ended."""
        waits = self.still_waiting(now)
        return max(waits.values(), default=0)

    def summary(self) -> Summary:
        """Distribution summary of completed waits.

        Raises:
            ValueError: when no dispatch was observed.
        """
        return summarize([float(s) for s in self.samples])

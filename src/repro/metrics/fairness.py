"""Weighted-fairness measurement.

The third §1 property: no general-purpose OS is proven "fair between
threads". This module measures how close a schedule comes to CFS's ideal
— each runnable task receives CPU time proportional to its weight — via
two standard quantities:

* **Jain's fairness index** over normalised progress
  (``executed / weight``): 1.0 is perfectly weighted-fair, ``1/n`` is
  maximally unfair;
* the **maximum relative share error** against the weight-proportional
  ideal.

The simulator's two local scheduling modes give the experiment its
contrast: round-robin timeslicing is fair in *time* but not in *weighted
share*; the vruntime mode (:class:`repro.sim.engine.SimConfig` with
``local_scheduler='fair'``) reproduces CFS's weighted fairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.task import Task


@dataclass(frozen=True)
class FairnessReport:
    """Fairness of one schedule over a set of tasks.

    Attributes:
        n_tasks: tasks measured.
        jain_index: Jain's index over weight-normalised progress (0..1].
        max_share_error: largest relative deviation of any task's CPU
            share from its weight-proportional entitlement.
        shares: achieved CPU share per tid.
        entitlements: weight-proportional ideal share per tid.
    """

    n_tasks: int
    jain_index: float
    max_share_error: float
    shares: dict[int, float]
    entitlements: dict[int, float]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``.

    Returns 1.0 for an empty or all-zero sample (vacuously fair).
    """
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def fairness_report(tasks: Sequence[Task]) -> FairnessReport:
    """Measure weighted fairness over ``tasks``.

    Tasks are assumed runnable for the whole window (use infinite tasks
    in fairness experiments so nobody exits early and skews shares).

    Raises:
        ValueError: when ``tasks`` is empty.
    """
    if not tasks:
        raise ValueError("fairness over zero tasks is undefined")
    total_executed = sum(task.executed for task in tasks)
    total_weight = sum(task.weight for task in tasks)
    shares: dict[int, float] = {}
    entitlements: dict[int, float] = {}
    errors: list[float] = []
    normalised: list[float] = []
    for task in tasks:
        share = (task.executed / total_executed) if total_executed else 0.0
        # Zero total weight (every task's weight forced to 0) entitles
        # nobody to anything; report 0.0 instead of dividing by zero.
        entitlement = (task.weight / total_weight) if total_weight else 0.0
        shares[task.tid] = share
        entitlements[task.tid] = entitlement
        if entitlement:
            errors.append(abs(share - entitlement) / entitlement)
        else:
            # Any share achieved against a zero entitlement is pure
            # excess; the absolute share is the deviation.
            errors.append(share)
        normalised.append(task.executed / task.weight if task.weight
                          else 0.0)
    return FairnessReport(
        n_tasks=len(tasks),
        jain_index=jain_index(normalised),
        max_share_error=max(errors),
        shares=shares,
        entitlements=entitlements,
    )

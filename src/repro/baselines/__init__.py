"""Baseline schedulers the experiments compare against.

* :class:`CfsLikeBalancer` — the average-based hierarchical balancer with
  the EuroSys'16 Group Imbalance pathology (what the paper wants to fix);
* :class:`GlobalQueueBalancer` — the single-queue ideal (upper bound);
* :class:`NullBalancer` — no balancing at all (lower bound);
* :class:`RandomStealPolicy` — classic random work stealing (plausible
  but unprovable).
"""

from repro.baselines.cfs import CfsLikeBalancer, GroupStats
from repro.baselines.global_queue import GlobalQueueBalancer, NullBalancer
from repro.baselines.random_steal import (
    IdleOnlyRandomStealPolicy,
    RandomStealPolicy,
)

__all__ = [
    "CfsLikeBalancer",
    "GroupStats",
    "GlobalQueueBalancer",
    "NullBalancer",
    "IdleOnlyRandomStealPolicy",
    "RandomStealPolicy",
]

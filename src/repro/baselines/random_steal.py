"""Random work stealing: plausible, popular, and unprovable.

Classic Cilk-style work stealing steals from a *uniformly random* victim
with no load comparison. It performs well in expectation — randomness is
a decent balancer — but it offers exactly the kind of guarantee the
paper is dissatisfied with: probabilistic, not worst-case. Under an
adversarial steal ordering the model checker finds starvation lassos
(equal-load cores trading tasks while an idle core's attempts keep
failing), making this the natural "why we need the filter" baseline.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.cpu import CoreSnapshot, CoreView
from repro.core.policy import Policy


class RandomStealPolicy(Policy):
    """Steal one task from a random core that has anything stealable.

    The filter keeps every core with a ready task — no imbalance margin,
    no overload requirement beyond stealability — and the choice is
    seeded-uniform among them.

    Attributes:
        seed: RNG seed (runs are reproducible).
    """

    #: Seeded-random choice: equivariant under no renaming (see Policy).
    choice_invariance = "none"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.seed = seed
        self.name = f"random_steal(seed={seed})"

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Anyone with a ready task is a victim candidate."""
        return stealee.nr_ready >= 1

    def choose(self, thief: CoreView,
               candidates: Sequence[CoreSnapshot]) -> CoreSnapshot:
        """Uniformly random victim."""
        return candidates[self._rng.randrange(len(candidates))]

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        return 1


class IdleOnlyRandomStealPolicy(RandomStealPolicy):
    """Random stealing restricted to idle thieves.

    The common refinement — busy cores never steal — which removes the
    equal-load ping-pong but still lacks the margin that makes the
    potential argument go through; the verifier shows which obligations
    it gains and which it still fails.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.name = f"idle_random_steal(seed={seed})"

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Only idle thieves steal, from anyone with a ready task."""
        return thief.nr_threads == 0 and stealee.nr_ready >= 1

"""The idealised global-queue scheduler: a work-conservation upper bound.

A single shared runqueue is trivially work-conserving — no core can idle
while the queue holds a task — which is why the paper's model has to work
so much harder: per-core runqueues are chosen "since having a runqueue
per core avoids contention issues", and the price is the balancing
problem being studied. This baseline puts the single-queue ideal back, as
a teleporting redistribution pass, to upper-bound what any per-core
balancer could achieve on a workload. It deliberately ignores locks,
staleness and migration costs; it is a yardstick, not a contender.
"""

from __future__ import annotations

from repro.core.balancer import AttemptOutcome, RoundRecord, StealAttempt
from repro.core.machine import Machine
from repro.core.task import TaskState


class GlobalQueueBalancer:
    """Redistribute ready tasks so no core idles while tasks wait.

    ``run_round()`` repeatedly moves a ready task from the most loaded
    core to an idle one until either no core is idle or no core has a
    spare ready task — the fixed point a global queue would maintain
    continuously.
    """

    def __init__(self, machine: Machine, keep_history: bool = False) -> None:
        self.machine = machine
        self.keep_history = keep_history
        self.rounds: list[RoundRecord] = []
        self.round_index = 0

    def run_round(self) -> RoundRecord:
        """Teleport tasks until the wasted-core condition clears."""
        loads_before = tuple(self.machine.loads())
        attempts: list[StealAttempt] = []
        while True:
            idle = [core for core in self.machine.cores if core.idle]
            donors = [
                core for core in self.machine.cores
                if core.runqueue.size >= 1 and core.nr_threads >= 2
            ]
            if not idle or not donors:
                break
            thief = idle[0]
            victim = max(donors, key=lambda c: (c.nr_threads, -c.cid))
            task = victim.runqueue.pop_tail()
            task.state = TaskState.READY
            thief.runqueue.push(task)
            attempts.append(StealAttempt(
                round_index=self.round_index,
                thief=thief.cid,
                victim=victim.cid,
                outcome=AttemptOutcome.SUCCESS,
                moved_task_ids=(task.tid,),
            ))
        record = RoundRecord(
            index=self.round_index,
            loads_before=loads_before,
            loads_after=tuple(self.machine.loads()),
            attempts=attempts,
        )
        self.round_index += 1
        if self.keep_history:
            self.rounds.append(record)
        return record


class NullBalancer:
    """A balancer that never balances: the pathology floor.

    Establishes the worst case for every experiment — whatever imbalance
    the workload creates persists until tasks finish. The gap between
    :class:`NullBalancer` and :class:`GlobalQueueBalancer` is the total
    opportunity a real balancer competes for.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.round_index = 0

    def run_round(self) -> RoundRecord:
        """Do nothing, faithfully."""
        loads = tuple(self.machine.loads())
        record = RoundRecord(
            index=self.round_index,
            loads_before=loads,
            loads_after=loads,
            attempts=[],
        )
        self.round_index += 1
        return record

"""A CFS-like hierarchical balancer with the wasted-cores pathology.

The paper's motivation rests on Lozi et al. (EuroSys'16): Linux CFS "has
been shown to leave cores idle while threads are waiting in runqueues".
The flagship instance is the **Group Imbalance bug**: CFS balances
scheduling groups by comparing *weighted load averages*; when one group
contains a single very heavy thread (e.g. a low-niceness analytics
process), that group's average is high, so its idle cores refuse to pull
work from other groups whose cores each have threads waiting — the
averages say "they are less loaded than we are", core-level reality says
otherwise.

:class:`CfsLikeBalancer` reproduces the mechanism, not the 120k-line
implementation: hierarchical groups from the domain tree, weighted-load
*averages* as the inter-group comparison, an imbalance ratio threshold
(CFS's ``imbalance_pct``), and intra-group balancing on weighted loads.
Against the library's verified policies — which filter on per-core thread
counts and are Lemma1-sound — it loses exactly where the paper says it
should (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.balancer import AttemptOutcome, RoundRecord, StealAttempt
from repro.core.errors import ConfigurationError
from repro.core.machine import Machine
from repro.core.task import TaskState
from repro.topology.domains import SchedDomain, flat_groups


@dataclass
class GroupStats:
    """Weighted-load statistics of one scheduling group."""

    gid: int
    cores: tuple[int, ...]
    total_weighted: int
    avg_weighted: float


class CfsLikeBalancer:
    """Average-based hierarchical balancing, Group Imbalance included.

    Exposes ``run_round()`` so the simulator can drive it like any other
    balancer.

    Attributes:
        machine: the machine being balanced.
        groups: leaf groups of the domain tree.
        imbalance_pct: an idle core pulls from another group only when
            that group's weighted average exceeds its own group's by this
            ratio (CFS uses 25%).
        intra_margin_weight: minimum weighted-load gap for intra-group
            steals.
    """

    def __init__(self, machine: Machine, domains: SchedDomain,
                 imbalance_pct: float = 0.25,
                 intra_margin_weight: int = 1024,
                 keep_history: bool = False) -> None:
        if imbalance_pct < 0:
            raise ConfigurationError(
                f"imbalance_pct must be >= 0, got {imbalance_pct}"
            )
        self.machine = machine
        self.groups = tuple(flat_groups(domains))
        self.imbalance_pct = imbalance_pct
        self.intra_margin_weight = intra_margin_weight
        self.keep_history = keep_history
        self.rounds: list[RoundRecord] = []
        self.round_index = 0
        self._group_of_core = {
            cid: gid
            for gid, cores in enumerate(self.groups)
            for cid in cores
        }

    # ------------------------------------------------------------------

    def group_stats(self) -> list[GroupStats]:
        """Current weighted-load statistics of every group."""
        stats = []
        for gid, cores in enumerate(self.groups):
            total = sum(
                self.machine.core(cid).weighted_load for cid in cores
            )
            stats.append(GroupStats(
                gid=gid,
                cores=cores,
                total_weighted=total,
                avg_weighted=total / len(cores),
            ))
        return stats

    def _steal_one(self, thief_cid: int, victim_cid: int) -> StealAttempt:
        """Migrate one task from victim to thief (tail steal)."""
        victim = self.machine.core(victim_cid)
        thief = self.machine.core(thief_cid)
        if victim.runqueue.size == 0:
            return StealAttempt(
                round_index=self.round_index,
                thief=thief_cid,
                victim=victim_cid,
                outcome=AttemptOutcome.EMPTY_VICTIM,
            )
        task = victim.runqueue.pop_tail()
        task.state = TaskState.READY
        thief.runqueue.push(task)
        return StealAttempt(
            round_index=self.round_index,
            thief=thief_cid,
            victim=victim_cid,
            outcome=AttemptOutcome.SUCCESS,
            moved_task_ids=(task.tid,),
        )

    def _busiest_core(self, cores: tuple[int, ...],
                      exclude: int | None = None) -> int | None:
        """Most weighted-loaded core with something stealable."""
        candidates = [
            cid for cid in cores
            if cid != exclude and self.machine.core(cid).runqueue.size >= 1
        ]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda cid: (self.machine.core(cid).weighted_load, -cid),
        )

    def _balance_core(self, cid: int,
                      stats: list[GroupStats]) -> StealAttempt | None:
        """One core's CFS-like balancing decision.

        Intra-group first (cheap, cache-friendly), then inter-group gated
        on the *average* comparison — the gate that goes wrong.
        """
        core = self.machine.core(cid)
        if not core.idle:
            return None  # CFS pulls aggressively only when idle

        gid = self._group_of_core[cid]
        my_group = stats[gid]

        # Intra-group: pull from the busiest sibling if it out-weighs us.
        sibling = self._busiest_core(my_group.cores, exclude=cid)
        if sibling is not None:
            gap = (
                self.machine.core(sibling).weighted_load
                - core.weighted_load
            )
            if gap >= self.intra_margin_weight:
                return self._steal_one(cid, sibling)

        # Inter-group: compare weighted AVERAGES (the Group Imbalance
        # bug): our heavy neighbour inflates my_group.avg_weighted, so
        # busier-per-core groups look "less loaded" than we are.
        threshold = my_group.avg_weighted * (1.0 + self.imbalance_pct)
        busiest_group = None
        for other in stats:
            if other.gid == gid:
                continue
            if other.avg_weighted <= threshold:
                continue
            if (busiest_group is None
                    or other.avg_weighted > busiest_group.avg_weighted):
                busiest_group = other
        if busiest_group is None:
            return None
        donor = self._busiest_core(busiest_group.cores)
        if donor is None:
            return None
        return self._steal_one(cid, donor)

    def run_round(self) -> RoundRecord:
        """One CFS-like balancing pass over all cores."""
        loads_before = tuple(self.machine.loads())
        stats = self.group_stats()
        attempts: list[StealAttempt] = []
        for core in self.machine.cores:
            attempt = self._balance_core(core.cid, stats)
            if attempt is not None:
                attempts.append(attempt)
        record = RoundRecord(
            index=self.round_index,
            loads_before=loads_before,
            loads_after=tuple(self.machine.loads()),
            attempts=attempts,
        )
        self.round_index += 1
        if self.keep_history:
            self.rounds.append(record)
        return record

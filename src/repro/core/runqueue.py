"""Per-core runqueues.

Each core owns exactly one :class:`RunQueue` (the model shared by Linux,
FreeBSD, Solaris and Windows, as the paper notes in Section 3.1). The
runqueue is a plain FIFO of :class:`~repro.core.task.Task` objects with a
*version counter* that increments on every mutation.

The version counter is the mechanism behind two features of this
reproduction:

* **Optimistic concurrency.** The lock-free selection phase records the
  versions it observed; when a steal later fails its locked re-check, the
  version delta proves that a concurrent mutation (i.e. another core's
  successful steal) invalidated the observation. This is exactly the
  failure-attribution argument of Section 4.3 ("if a work-stealing attempt
  fails, it is because another work-stealing attempt performed by another
  core succeeded").
* **Purity enforcement.** Snapshots taken for the selection phase are
  immutable; any attempt to mutate shared state during selection is a
  :class:`~repro.core.errors.SelectionPhasePurityError`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.core.errors import ConfigurationError, SchedulingInvariantError
from repro.core.task import Task


class RunQueue:
    """A FIFO queue of ready tasks belonging to one core.

    Attributes:
        owner: id of the core owning this runqueue.
        version: mutation counter; increments on every push/pop/remove.
    """

    __slots__ = ("owner", "version", "_tasks", "_on_mutate")

    def __init__(self, owner: int,
                 on_mutate: Callable[["RunQueue"], None] | None = None) -> None:
        """Create an empty runqueue.

        Args:
            owner: id of the owning core.
            on_mutate: optional hook invoked *before* each mutation; the
                lock manager installs one to assert that the mutator holds
                this runqueue's lock when enforcement is enabled.
        """
        self.owner = owner
        self.version = 0
        self._tasks: deque[Task] = deque()
        self._on_mutate = on_mutate

    # ------------------------------------------------------------------
    # read-only interface (legal during the selection phase)
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of ready tasks waiting in the queue."""
        return len(self._tasks)

    @property
    def weighted_load(self) -> int:
        """Sum of the CFS weights of all queued tasks."""
        return sum(task.weight for task in self._tasks)

    def peek(self) -> Task | None:
        """Return the task at the head without removing it."""
        return self._tasks[0] if self._tasks else None

    def peek_tail(self) -> Task | None:
        """Return the task at the tail without removing it."""
        return self._tasks[-1] if self._tasks else None

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task: Task) -> bool:
        return task in self._tasks

    def task_ids(self) -> list[int]:
        """Return the tids of queued tasks in FIFO order."""
        return [task.tid for task in self._tasks]

    # ------------------------------------------------------------------
    # mutating interface (requires the runqueue lock under enforcement)
    # ------------------------------------------------------------------

    def _mutating(self) -> None:
        if self._on_mutate is not None:
            self._on_mutate(self)
        self.version += 1

    def push(self, task: Task) -> None:
        """Append ``task`` to the tail of the queue.

        Raises:
            SchedulingInvariantError: if the task is already queued here;
                a task on two positions of a runqueue (or two runqueues)
                indicates a balancer protocol bug.
        """
        if task in self._tasks:
            raise SchedulingInvariantError(
                f"task {task.tid} pushed twice onto runqueue of core {self.owner}"
            )
        self._mutating()
        task.note_migration(self.owner)
        self._tasks.append(task)

    def push_front(self, task: Task) -> None:
        """Prepend ``task``; used when a preempted current task re-queues."""
        if task in self._tasks:
            raise SchedulingInvariantError(
                f"task {task.tid} pushed twice onto runqueue of core {self.owner}"
            )
        self._mutating()
        task.note_migration(self.owner)
        self._tasks.appendleft(task)

    def pop(self) -> Task:
        """Remove and return the head task.

        Raises:
            SchedulingInvariantError: if the queue is empty.
        """
        if not self._tasks:
            raise SchedulingInvariantError(
                f"pop from empty runqueue of core {self.owner}"
            )
        self._mutating()
        return self._tasks.popleft()

    def pop_tail(self) -> Task:
        """Remove and return the tail task (victims give their coldest task).

        Stealing from the tail mirrors CFS, which migrates tasks least
        likely to be cache-hot on the victim.

        Raises:
            SchedulingInvariantError: if the queue is empty.
        """
        if not self._tasks:
            raise SchedulingInvariantError(
                f"pop_tail from empty runqueue of core {self.owner}"
            )
        self._mutating()
        return self._tasks.pop()

    def remove(self, task: Task) -> None:
        """Remove a specific task from anywhere in the queue.

        Raises:
            SchedulingInvariantError: if the task is not queued here.
        """
        if task not in self._tasks:
            raise SchedulingInvariantError(
                f"task {task.tid} not on runqueue of core {self.owner}"
            )
        self._mutating()
        self._tasks.remove(task)

    def clear(self) -> list[Task]:
        """Remove and return all tasks (used by workload teardown)."""
        self._mutating()
        drained = list(self._tasks)
        self._tasks.clear()
        return drained

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunQueue(core={self.owner}, size={self.size},"
            f" version={self.version})"
        )


def validate_disjoint(runqueues: list[RunQueue]) -> None:
    """Assert that no task appears on two runqueues.

    This is the global "thread conservation" invariant the balancer must
    preserve: a steal moves a task, it never duplicates one.

    Raises:
        SchedulingInvariantError: naming the duplicated task id.
    """
    seen: dict[int, int] = {}
    for rq in runqueues:
        for task in rq:
            if task.tid in seen:
                raise SchedulingInvariantError(
                    f"task {task.tid} on runqueues of cores"
                    f" {seen[task.tid]} and {rq.owner}"
                )
            seen[task.tid] = rq.owner


def total_tasks(runqueues: list[RunQueue]) -> int:
    """Total number of ready tasks across ``runqueues``."""
    return sum(rq.size for rq in runqueues)


def build_runqueue(owner: int, sizes_or_tasks: int | list[Task],
                   nice: int = 0) -> RunQueue:
    """Build a runqueue pre-populated for tests and enumeration.

    Args:
        owner: owning core id.
        sizes_or_tasks: either an integer count of identical nice-``nice``
            tasks to create, or an explicit list of tasks to enqueue.
        nice: niceness used when creating tasks from a count.

    Returns:
        A populated :class:`RunQueue`.
    """
    rq = RunQueue(owner)
    if isinstance(sizes_or_tasks, int):
        if sizes_or_tasks < 0:
            raise ConfigurationError(
                f"task count must be >= 0, got {sizes_or_tasks}"
            )
        for _ in range(sizes_or_tasks):
            rq.push(Task(nice=nice))
    else:
        for task in sizes_or_tasks:
            rq.push(task)
    return rq

"""The optimistic load balancer: Figure 1's three steps, executed.

A *load-balancing round* runs one balancing operation per participating
core. Each operation is:

1. **Selection phase** (lock-free, read-only): the core takes — or shares
   — a snapshot of all cores, applies the policy's *filter* (step 1) and
   *choice* (step 2), producing a :class:`StealIntent` or nothing.
2. **Stealing phase** (both runqueues locked): the *steal* (step 3)
   re-checks the filter against live state and migrates tasks when it
   still holds. Because the selection acted on possibly stale data, the
   re-check may fail; that failure is recorded — with the concurrent
   successful steals that *caused* it — rather than treated as an error.

The per-attempt records are the raw material of the verification layer:
the failure-attribution theorem (§4.3, "if a work-stealing attempt fails,
it is because another work-stealing attempt performed by another core
succeeded") is checked directly against :attr:`StealAttempt.invalidated_by`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Sequence

from repro.core.cpu import Core, CoreSnapshot
from repro.core.errors import ConfigurationError, SchedulingInvariantError
from repro.core.machine import Machine
from repro.core.policy import Policy, filter_candidates
from repro.core.task import TaskState
from repro.sim.interleave import ConcurrentInterleaving, Interleaving
from repro.sim.locks import LockManager

#: Optional override of the policy's step-2 choice, used by the verifier
#: to quantify over *all* choices and prove choice-irrelevance.
ChoiceOracle = Callable[[CoreSnapshot, Sequence[CoreSnapshot]], CoreSnapshot]


class AttemptOutcome(Enum):
    """How one core's balancing operation ended."""

    SUCCESS = "success"              #: tasks were migrated
    NO_CANDIDATES = "no_candidates"  #: the filter kept no core; nothing attempted
    RECHECK_FAILED = "recheck_failed"  #: filter no longer held under the locks
    LOCK_BUSY = "lock_busy"          #: a racing steal held a needed lock
    EMPTY_VICTIM = "empty_victim"    #: filter held but victim had no stealable task


#: Outcomes that count as *failed optimistic attempts* (a victim was
#: selected but nothing was stolen). ``NO_CANDIDATES`` is not a failure:
#: the core had nobody to steal from, which is the normal idle state.
FAILED_OUTCOMES = frozenset(
    {AttemptOutcome.RECHECK_FAILED, AttemptOutcome.LOCK_BUSY,
     AttemptOutcome.EMPTY_VICTIM}
)


@dataclass(frozen=True)
class StealIntent:
    """Output of one core's selection phase.

    Attributes:
        thief: id of the core that will steal.
        victim: id of the chosen victim core.
        observed_thief_version: thief runqueue version at selection time.
        observed_victim_version: victim runqueue version at selection time.
        candidates: core ids that passed the filter (for audit).
    """

    thief: int
    victim: int
    observed_thief_version: int
    observed_victim_version: int
    candidates: tuple[int, ...]


@dataclass(frozen=True)
class StealAttempt:
    """Full record of one core's balancing operation in one round.

    Attributes:
        round_index: the round this attempt belongs to.
        thief: id of the stealing core.
        victim: id of the selected victim, or ``None`` for
            ``NO_CANDIDATES``.
        outcome: the :class:`AttemptOutcome`.
        moved_task_ids: tids migrated (empty unless ``SUCCESS``).
        observed_victim_version: victim runqueue version at selection.
        live_victim_version: victim runqueue version at re-check, or
            ``None`` if the locks were never acquired.
        invalidated_by: thief ids of *earlier successful* attempts in the
            same round that mutated this attempt's thief or victim
            runqueue — the concurrent steals that caused this failure.
        candidates: core ids that passed the filter at selection.
    """

    round_index: int
    thief: int
    victim: int | None
    outcome: AttemptOutcome
    moved_task_ids: tuple[int, ...] = ()
    observed_victim_version: int | None = None
    live_victim_version: int | None = None
    invalidated_by: tuple[int, ...] = ()
    candidates: tuple[int, ...] = ()

    @property
    def succeeded(self) -> bool:
        """Whether tasks were migrated."""
        return self.outcome is AttemptOutcome.SUCCESS

    @property
    def failed(self) -> bool:
        """Whether a selected steal did not happen (optimistic failure)."""
        return self.outcome in FAILED_OUTCOMES


@dataclass
class RoundRecord:
    """Everything that happened in one load-balancing round.

    Attributes:
        index: round number (0-based).
        loads_before: per-core thread counts entering the round.
        loads_after: per-core thread counts leaving the round.
        attempts: one :class:`StealAttempt` per participating core, in
            execution order.
    """

    index: int
    loads_before: tuple[int, ...]
    loads_after: tuple[int, ...]
    attempts: list[StealAttempt] = field(default_factory=list)

    @property
    def successes(self) -> list[StealAttempt]:
        """Attempts that migrated tasks."""
        return [a for a in self.attempts if a.succeeded]

    @property
    def failures(self) -> list[StealAttempt]:
        """Optimistically failed attempts."""
        return [a for a in self.attempts if a.failed]

    @property
    def tasks_moved(self) -> int:
        """Total tasks migrated during the round."""
        return sum(len(a.moved_task_ids) for a in self.attempts)

    @property
    def quiet(self) -> bool:
        """True when nothing was attempted or moved: a fixpoint round."""
        return all(
            a.outcome is AttemptOutcome.NO_CANDIDATES for a in self.attempts
        )


class LoadBalancer:
    """Executes load-balancing rounds for a machine under a policy.

    Attributes:
        machine: the :class:`~repro.core.machine.Machine` being balanced.
        policy: the :class:`~repro.core.policy.Policy` in force.
        locks: the :class:`~repro.sim.locks.LockManager` implementing the
            two-runqueue stealing protocol.
        rounds: history of :class:`RoundRecord` (kept when
            ``keep_history``).
    """

    def __init__(self, machine: Machine, policy: Policy,
                 interleaving: Interleaving | None = None,
                 keep_history: bool = True,
                 check_invariants: bool = True,
                 recheck_under_lock: bool = True) -> None:
        """Create a balancer.

        Args:
            machine: machine to balance.
            policy: three-step policy to run.
            interleaving: default interleaving for rounds; defaults to the
                deterministic concurrent regime.
            keep_history: whether to retain per-round records (disable
                for very long simulations to bound memory).
            check_invariants: whether to validate machine invariants after
                every round (cheap at verification scopes; disable in
                large benchmarks).
            recheck_under_lock: re-evaluate the filter against live state
                inside the locked stealing phase (Listing 1 line 12).
                Disabling this is an ABLATION ONLY: stale selections then
                commit steals the filter no longer justifies, and the
                steal-soundness guarantees (victim not drained past its
                running task is still physically enforced, but gap
                shrinkage is not) no longer hold.
        """
        self.machine = machine
        self.policy = policy
        self.interleaving = interleaving or ConcurrentInterleaving()
        self.locks = LockManager(machine.n_cores)
        self.keep_history = keep_history
        self.check_invariants = check_invariants
        self.recheck_under_lock = recheck_under_lock
        self.rounds: list[RoundRecord] = []
        self.round_index = 0
        self.total_successes = 0
        self.total_failures = 0
        self.total_moved = 0

    # ------------------------------------------------------------------
    # selection phase (step 1 + step 2)
    # ------------------------------------------------------------------

    def select(self, thief_cid: int, snapshots: Sequence[CoreSnapshot],
               choice_oracle: ChoiceOracle | None = None) -> StealIntent | None:
        """Run the lock-free selection phase for one core.

        Args:
            thief_cid: the core performing the operation.
            snapshots: observation of every core (the thief reads its own
                entry for its self-view).
            choice_oracle: optional override of the policy's step-2
                choice, used by the verifier to quantify over choices.

        Returns:
            A :class:`StealIntent`, or ``None`` when the filter kept no
            candidate.

        Raises:
            SchedulingInvariantError: if the choice returns a core outside
                the filtered candidates — the Listing 1 ``ensuring``
                clause, enforced at runtime.
        """
        thief_snap = snapshots[thief_cid]
        candidates = filter_candidates(self.policy, thief_snap, snapshots)
        if not candidates:
            return None
        chooser = choice_oracle or self.policy.choose
        victim = chooser(thief_snap, candidates)
        if victim not in candidates:
            raise SchedulingInvariantError(
                f"policy {self.policy.name}: choice returned core"
                f" {victim.cid}, not among candidates"
                f" {[c.cid for c in candidates]}"
            )
        return StealIntent(
            thief=thief_cid,
            victim=victim.cid,
            observed_thief_version=thief_snap.version,
            observed_victim_version=victim.version,
            candidates=tuple(c.cid for c in candidates),
        )

    # ------------------------------------------------------------------
    # stealing phase (step 3)
    # ------------------------------------------------------------------

    def _migrate(self, thief: Core, victim: Core) -> tuple[int, ...]:
        """Move ``steal_amount`` tasks from victim tail to thief queue.

        The running task is never stealable; the requested amount is
        clamped to the victim's ready count.
        """
        requested = self.policy.steal_amount(thief, victim)
        if requested < 1:
            raise ConfigurationError(
                f"policy {self.policy.name}: steal_amount returned"
                f" {requested}, must be >= 1"
            )
        amount = min(requested, victim.runqueue.size)
        moved: list[int] = []
        for _ in range(amount):
            task = victim.runqueue.pop_tail()
            task.state = TaskState.READY
            thief.runqueue.push(task)
            moved.append(task.tid)
        return tuple(moved)

    def execute_steal(self, intent: StealIntent,
                      prior_successes: Sequence[StealAttempt]) -> StealAttempt:
        """Run the locked stealing phase for one intent.

        Args:
            intent: the selection-phase output.
            prior_successes: successful attempts already executed in this
                round, used to attribute failures to their cause.

        Returns:
            The completed :class:`StealAttempt`.
        """
        thief = self.machine.core(intent.thief)
        victim = self.machine.core(intent.victim)

        def blamers() -> tuple[int, ...]:
            return tuple(
                a.thief for a in prior_successes
                if a.succeeded and {a.thief, a.victim} & {intent.thief, intent.victim}
            )

        with self.locks.pair(intent.thief, intent.thief, intent.victim) as locked:
            if not locked:
                return StealAttempt(
                    round_index=self.round_index,
                    thief=intent.thief,
                    victim=intent.victim,
                    outcome=AttemptOutcome.LOCK_BUSY,
                    observed_victim_version=intent.observed_victim_version,
                    invalidated_by=blamers(),
                    candidates=intent.candidates,
                )
            live_version = victim.runqueue.version
            if self.recheck_under_lock and not self.policy.can_steal(
                thief, victim
            ):
                return StealAttempt(
                    round_index=self.round_index,
                    thief=intent.thief,
                    victim=intent.victim,
                    outcome=AttemptOutcome.RECHECK_FAILED,
                    observed_victim_version=intent.observed_victim_version,
                    live_victim_version=live_version,
                    invalidated_by=blamers(),
                    candidates=intent.candidates,
                )
            moved = self._migrate(thief, victim)
            outcome = (
                AttemptOutcome.SUCCESS if moved else AttemptOutcome.EMPTY_VICTIM
            )
            return StealAttempt(
                round_index=self.round_index,
                thief=intent.thief,
                victim=intent.victim,
                outcome=outcome,
                moved_task_ids=moved,
                observed_victim_version=intent.observed_victim_version,
                live_victim_version=live_version,
                invalidated_by=blamers() if not moved else (),
                candidates=intent.candidates,
            )

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------

    def run_round(self, interleaving: Interleaving | None = None,
                  participants: Sequence[int] | None = None,
                  choice_oracle: ChoiceOracle | None = None) -> RoundRecord:
        """Execute one full load-balancing round.

        Args:
            interleaving: overrides the balancer's default interleaving
                for this round.
            participants: core ids performing balancing operations;
                defaults to all cores (CFS balances on every core).
            choice_oracle: optional step-2 override (verification use).

        Returns:
            The :class:`RoundRecord` for the round.
        """
        inter = interleaving or self.interleaving
        cids = list(participants) if participants is not None else [
            core.cid for core in self.machine.cores
        ]
        loads_before = tuple(self.machine.loads())
        attempts: list[StealAttempt] = []

        if inter.fresh_snapshots:
            self._run_sequential(inter, cids, choice_oracle, attempts)
        elif inter.overlapped:
            self._run_overlapped(inter, cids, choice_oracle, attempts)
        elif inter.pipelined:
            self._run_pipelined(inter, cids, choice_oracle, attempts)
        else:
            self._run_concurrent(inter, cids, choice_oracle, attempts)

        self.locks.assert_all_free()
        if self.check_invariants:
            self.machine.check_invariants()

        record = RoundRecord(
            index=self.round_index,
            loads_before=loads_before,
            loads_after=tuple(self.machine.loads()),
            attempts=attempts,
        )
        self.round_index += 1
        self.total_successes += len(record.successes)
        self.total_failures += len(record.failures)
        self.total_moved += record.tasks_moved
        if self.keep_history:
            self.rounds.append(record)
        return record

    def _no_candidates(self, cid: int) -> StealAttempt:
        return StealAttempt(
            round_index=self.round_index,
            thief=cid,
            victim=None,
            outcome=AttemptOutcome.NO_CANDIDATES,
        )

    def _run_sequential(self, inter: Interleaving, cids: list[int],
                        choice_oracle: ChoiceOracle | None,
                        attempts: list[StealAttempt]) -> None:
        """§4.2 regime: fresh snapshot before each core's operation."""
        for cid in inter.participant_order(self.round_index, cids):
            snapshots = self.machine.snapshot()
            intent = self.select(cid, snapshots, choice_oracle)
            if intent is None:
                attempts.append(self._no_candidates(cid))
                continue
            attempts.append(self.execute_steal(intent, attempts))

    def _run_concurrent(self, inter: Interleaving, cids: list[int],
                        choice_oracle: ChoiceOracle | None,
                        attempts: list[StealAttempt]) -> None:
        """§4.3 regime: shared stale snapshot, serialized racing steals."""
        snapshots = self.machine.snapshot()
        intents: dict[int, StealIntent] = {}
        for cid in cids:
            intent = self.select(cid, snapshots, choice_oracle)
            if intent is None:
                attempts.append(self._no_candidates(cid))
            else:
                intents[cid] = intent
        for cid in inter.steal_order(self.round_index, sorted(intents)):
            attempts.append(self.execute_steal(intents[cid], attempts))

    def _run_pipelined(self, inter: Interleaving, cids: list[int],
                       choice_oracle: ChoiceOracle | None,
                       attempts: list[StealAttempt]) -> None:
        """Op-level regime: each select reads the machine at its own
        point in the schedule, so selections observe other cores'
        completed steals — the general lock-free model of §3.1, of which
        sequential and concurrent are the two extremes."""
        intents: dict[int, StealIntent | None] = {}
        for op, cid in inter.op_schedule(self.round_index, cids):
            if op == "select":
                snapshots = self.machine.snapshot()
                intents[cid] = self.select(cid, snapshots, choice_oracle)
            else:  # steal
                intent = intents.get(cid)
                if intent is None:
                    attempts.append(self._no_candidates(cid))
                else:
                    attempts.append(self.execute_steal(intent, attempts))

    def _run_overlapped(self, inter: Interleaving, cids: list[int],
                        choice_oracle: ChoiceOracle | None,
                        attempts: list[StealAttempt]) -> None:
        """§4.3 regime with overlapping critical sections and try-locks.

        Steals advance through three micro-ops — acquire, migrate,
        release — following the interleaving's micro-op schedule. A
        failed double-try-lock aborts the attempt with ``LOCK_BUSY``.
        """
        snapshots = self.machine.snapshot()
        intents: dict[int, StealIntent] = {}
        for cid in cids:
            intent = self.select(cid, snapshots, choice_oracle)
            if intent is None:
                attempts.append(self._no_candidates(cid))
            else:
                intents[cid] = intent

        stage: dict[int, int] = {cid: 0 for cid in intents}
        pending: dict[int, StealAttempt] = {}
        schedule = inter.schedule_micro_ops(
            self.round_index, sorted(intents)
        )
        for cid in schedule:
            if cid not in intents or stage.get(cid, 3) >= 3:
                continue
            intent = intents[cid]
            if stage[cid] == 0:
                if self.locks.try_lock_pair(cid, intent.thief, intent.victim):
                    stage[cid] = 1
                else:
                    stage[cid] = 3
                    # The cause of a busy lock is the steal holding it —
                    # in flight, not yet recorded as a success — plus any
                    # completed steal that touched our runqueues.
                    holders = {
                        holder
                        for holder in (
                            self.locks.lock_of(intent.thief).holder,
                            self.locks.lock_of(intent.victim).holder,
                        )
                        if holder is not None and holder != cid
                    }
                    completed = {
                        a.thief for a in attempts
                        if a.succeeded
                        and {a.thief, a.victim} & {intent.thief, intent.victim}
                    }
                    attempts.append(StealAttempt(
                        round_index=self.round_index,
                        thief=intent.thief,
                        victim=intent.victim,
                        outcome=AttemptOutcome.LOCK_BUSY,
                        observed_victim_version=intent.observed_victim_version,
                        invalidated_by=tuple(sorted(holders | completed)),
                        candidates=intent.candidates,
                    ))
            elif stage[cid] == 1:
                pending[cid] = self._locked_steal_body(intent, attempts)
                stage[cid] = 2
            else:
                self.locks.unlock_pair(cid, intent.thief, intent.victim)
                attempts.append(pending.pop(cid))
                stage[cid] = 3
        # Drain any steals the (random) schedule left unfinished.
        for cid, st in sorted(stage.items()):
            intent = intents[cid]
            if st == 1:
                pending[cid] = self._locked_steal_body(intent, attempts)
                st = 2
            if st == 2:
                self.locks.unlock_pair(cid, intent.thief, intent.victim)
                attempts.append(pending.pop(cid))

    def _locked_steal_body(self, intent: StealIntent,
                           attempts: list[StealAttempt]) -> StealAttempt:
        """Re-check + migrate, assuming both locks are already held."""
        thief = self.machine.core(intent.thief)
        victim = self.machine.core(intent.victim)
        live_version = victim.runqueue.version
        blame = tuple(
            a.thief for a in attempts
            if a.succeeded and {a.thief, a.victim} & {intent.thief, intent.victim}
        )
        if self.recheck_under_lock and not self.policy.can_steal(
            thief, victim
        ):
            return StealAttempt(
                round_index=self.round_index,
                thief=intent.thief,
                victim=intent.victim,
                outcome=AttemptOutcome.RECHECK_FAILED,
                observed_victim_version=intent.observed_victim_version,
                live_victim_version=live_version,
                invalidated_by=blame,
                candidates=intent.candidates,
            )
        moved = self._migrate(thief, victim)
        outcome = AttemptOutcome.SUCCESS if moved else AttemptOutcome.EMPTY_VICTIM
        return StealAttempt(
            round_index=self.round_index,
            thief=intent.thief,
            victim=intent.victim,
            outcome=outcome,
            moved_task_ids=moved,
            observed_victim_version=intent.observed_victim_version,
            live_victim_version=live_version,
            invalidated_by=blame if not moved else (),
            candidates=intent.candidates,
        )

    # ------------------------------------------------------------------
    # convergence driver
    # ------------------------------------------------------------------

    def run_until_work_conserving(self, max_rounds: int = 1000,
                                  interleaving: Interleaving | None = None,
                                  require_stable: bool = False) -> int | None:
        """Run rounds until no core is idle while another is overloaded.

        This measures the ``N`` of the paper's work-conservation
        definition on a concrete execution: the number of rounds after
        which the wasted-core condition no longer holds.

        Args:
            max_rounds: give up after this many rounds (a correct policy
                at verification scopes needs far fewer).
            interleaving: per-call interleaving override.
            require_stable: when True, additionally require a quiet round
                (no candidates anywhere) so the state is a fixpoint, not
                merely momentarily acceptable.

        Returns:
            The number of rounds executed to reach the condition, or
            ``None`` if ``max_rounds`` was exhausted first (evidence of a
            work-conservation violation, e.g. the §4.3 ping-pong).
        """
        for done in range(max_rounds + 1):
            if self.machine.is_work_conserving_state():
                if not require_stable:
                    return done
                record = self.run_round(interleaving=interleaving)
                if record.quiet:
                    return done
                continue
            if done == max_rounds:
                break
            self.run_round(interleaving=interleaving)
        return None

"""Core scheduler model: tasks, runqueues, cores, machines, policies,
and the optimistic three-step load balancer (Figure 1 of the paper)."""

from repro.core.balancer import (
    FAILED_OUTCOMES,
    AttemptOutcome,
    LoadBalancer,
    RoundRecord,
    StealAttempt,
    StealIntent,
)
from repro.core.cpu import Core, CoreSnapshot, CoreView, is_idle, is_overloaded
from repro.core.errors import (
    ConfigurationError,
    DslError,
    DslSyntaxError,
    DslValidationError,
    LockProtocolError,
    ReproError,
    SchedulingInvariantError,
    SelectionPhasePurityError,
    VerificationError,
)
from repro.core.machine import Machine
from repro.core.policy import LoadView, Policy, filter_candidates
from repro.core.runqueue import (
    RunQueue,
    build_runqueue,
    total_tasks,
    validate_disjoint,
)
from repro.core.task import (
    MAX_NICE,
    MIN_NICE,
    NICE_0_WEIGHT,
    NICE_TO_WEIGHT,
    Task,
    TaskState,
    make_tasks,
    nice_to_weight,
)

__all__ = [
    "FAILED_OUTCOMES",
    "AttemptOutcome",
    "LoadBalancer",
    "RoundRecord",
    "StealAttempt",
    "StealIntent",
    "Core",
    "CoreSnapshot",
    "CoreView",
    "is_idle",
    "is_overloaded",
    "ConfigurationError",
    "DslError",
    "DslSyntaxError",
    "DslValidationError",
    "LockProtocolError",
    "ReproError",
    "SchedulingInvariantError",
    "SelectionPhasePurityError",
    "VerificationError",
    "Machine",
    "LoadView",
    "Policy",
    "filter_candidates",
    "RunQueue",
    "build_runqueue",
    "total_tasks",
    "validate_disjoint",
    "MAX_NICE",
    "MIN_NICE",
    "NICE_0_WEIGHT",
    "NICE_TO_WEIGHT",
    "Task",
    "TaskState",
    "make_tasks",
    "nice_to_weight",
]

"""Cores and their immutable snapshots.

A :class:`Core` is the live, mutable pairing of a *current task* and a
*runqueue*, exactly the scheduler model of Section 3.1 of the paper:
"a scheduler is defined with reference to, for each core of the machine,
the current thread, if any, that is running on that core, and a runqueue
containing threads waiting to be scheduled".

A :class:`CoreSnapshot` is the read-only view of a core that the lock-free
selection phase operates on. Policies receive snapshots in their
``filter``/``choose`` steps, making the paper's purity requirement
("the selection phase may not modify runqueues") hold by construction:
there is simply nothing mutable in scope. Snapshots may be *stale* by the
time the stealing phase runs — that staleness is the source of optimistic
failures and the whole subject of Section 4.3.

Both classes implement the structural :class:`CoreView` protocol so a
policy's ``load``/``can_steal`` code runs unchanged against live cores
(during the locked re-check) and snapshots (during selection), mirroring
Listing 1 where ``canSteal`` is evaluated in both phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.errors import SchedulingInvariantError
from repro.core.runqueue import RunQueue
from repro.core.task import NICE_0_WEIGHT, Task, TaskState


@runtime_checkable
class CoreView(Protocol):
    """Structural view of a core, satisfied by ``Core`` and ``CoreSnapshot``.

    Attributes:
        cid: core id.
        nr_ready: number of tasks waiting in the runqueue.
        has_current: whether a task is currently running on the core.
        weighted_load: CFS-weighted load (runqueue + current task).
        node: NUMA node the core belongs to.
    """

    cid: int
    nr_ready: int
    has_current: bool
    weighted_load: int
    node: int

    @property
    def nr_threads(self) -> int:
        """Total threads on the core: current (0 or 1) + runqueue size."""
        ...


def is_idle(view: CoreView) -> bool:
    """Paper definition (Section 3.1): no current task and empty runqueue."""
    return not view.has_current and view.nr_ready == 0


def is_overloaded(view: CoreView) -> bool:
    """Paper definition (Listing 2): two or more threads counting current.

    ``isOverloaded`` in Listing 2 reads: if there is a current task the
    runqueue must hold at least one more; otherwise at least two. Both
    branches reduce to "total threads >= 2".
    """
    if view.has_current:
        return view.nr_ready >= 1
    return view.nr_ready >= 2


@dataclass(frozen=True)
class CoreSnapshot:
    """Immutable observation of a core at a point in (virtual) time.

    Attributes:
        cid: core id.
        nr_ready: runqueue size at observation time.
        has_current: whether a task was running at observation time.
        weighted_load: weighted load at observation time.
        node: NUMA node of the core (topology is immutable, never stale).
        version: runqueue version at observation time; used to attribute
            later steal failures to the concurrent mutations that caused
            them (Section 4.3's first proof obligation).
        ready_task_ids: tids of queued tasks, for locality-aware choice.
    """

    cid: int
    nr_ready: int
    has_current: bool
    weighted_load: int
    node: int
    version: int
    ready_task_ids: tuple[int, ...] = ()

    @property
    def nr_threads(self) -> int:
        """Total threads observed: current (0 or 1) + runqueue size."""
        return self.nr_ready + (1 if self.has_current else 0)

    @property
    def idle(self) -> bool:
        """Whether the observed core was idle."""
        return is_idle(self)

    @property
    def overloaded(self) -> bool:
        """Whether the observed core was overloaded."""
        return is_overloaded(self)


class Core:
    """A live core: current task + runqueue.

    Attributes:
        cid: core id, dense in ``[0, n_cores)``.
        node: NUMA node id (0 on non-NUMA machines).
        runqueue: the core's :class:`~repro.core.runqueue.RunQueue`.
        current: the running task, or ``None`` when the CPU is idle or
            only context-switching.
    """

    __slots__ = ("cid", "node", "runqueue", "current")

    def __init__(self, cid: int, node: int = 0) -> None:
        self.cid = cid
        self.node = node
        self.runqueue = RunQueue(owner=cid)
        self.current: Task | None = None

    # -- CoreView ------------------------------------------------------

    @property
    def nr_ready(self) -> int:
        """Number of tasks waiting in this core's runqueue."""
        return self.runqueue.size

    @property
    def has_current(self) -> bool:
        """Whether a task currently occupies the CPU."""
        return self.current is not None

    @property
    def weighted_load(self) -> int:
        """Weighted load: runqueue weights plus the current task's weight."""
        load = self.runqueue.weighted_load
        if self.current is not None:
            load += self.current.weight
        return load

    @property
    def nr_threads(self) -> int:
        """Total threads on the core: current (0 or 1) + runqueue size."""
        return self.nr_ready + (1 if self.current is not None else 0)

    @property
    def idle(self) -> bool:
        """Paper definition: no current task and an empty runqueue."""
        return is_idle(self)

    @property
    def overloaded(self) -> bool:
        """Paper definition: two or more threads counting the current one."""
        return is_overloaded(self)

    # -- scheduling ----------------------------------------------------

    def snapshot(self) -> CoreSnapshot:
        """Take the immutable observation used by the selection phase."""
        return CoreSnapshot(
            cid=self.cid,
            nr_ready=self.runqueue.size,
            has_current=self.current is not None,
            weighted_load=self.weighted_load,
            node=self.node,
            version=self.runqueue.version,
            ready_task_ids=tuple(self.runqueue.task_ids()),
        )

    def pick_next(self) -> Task | None:
        """Dispatch the head of the runqueue onto the CPU.

        Cores "can only schedule threads that are waiting in their own
        runqueue" (Section 3.1). If a task is already current it keeps
        running; otherwise the runqueue head (if any) becomes current.

        Returns:
            The task now running, or ``None`` if the core stays idle.
        """
        if self.current is not None:
            return self.current
        if self.runqueue.size == 0:
            return None
        task = self.runqueue.pop()
        task.state = TaskState.RUNNING
        task.note_migration(self.cid)
        self.current = task
        return task

    def preempt(self) -> None:
        """Move the current task back to the runqueue tail (timeslice end)."""
        if self.current is None:
            return
        task = self.current
        self.current = None
        task.state = TaskState.READY
        self.runqueue.push(task)

    def block_current(self) -> Task:
        """Take the current task off the CPU without re-queuing it.

        Used when the running task blocks (barrier, I/O). The task leaves
        the scheduler's visible state entirely, which is how the paper's
        "thread leaves the runqueues" boundary condition arises.

        Raises:
            SchedulingInvariantError: if the core has no current task.
        """
        if self.current is None:
            raise SchedulingInvariantError(
                f"core {self.cid} has no current task to block"
            )
        task = self.current
        self.current = None
        task.state = TaskState.BLOCKED
        return task

    def finish_current(self) -> Task:
        """Retire the current task permanently (it finished its work).

        Raises:
            SchedulingInvariantError: if the core has no current task.
        """
        if self.current is None:
            raise SchedulingInvariantError(
                f"core {self.cid} has no current task to finish"
            )
        task = self.current
        self.current = None
        task.state = TaskState.FINISHED
        return task

    def load_threads(self) -> int:
        """Listing 1's default ``load()``: ready size + current size."""
        return self.nr_threads

    def normalized_weighted_load(self) -> float:
        """Weighted load expressed in units of one nice-0 task."""
        return self.weighted_load / NICE_0_WEIGHT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cur = self.current.tid if self.current else "-"
        return (
            f"Core({self.cid}, node={self.node}, current={cur},"
            f" ready={self.nr_ready})"
        )

"""Tasks (threads) scheduled by the simulated multicore machine.

The paper's model treats threads as opaque units of work with an optional
importance ("niceness") used by weighted load-balancing policies. This
module provides that unit: a :class:`Task` with CFS-compatible
nice-to-weight conversion, plus lightweight execution accounting used by
the discrete-event simulator (:mod:`repro.sim.engine`) to drive workloads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.core.errors import ConfigurationError

#: CFS ``sched_prio_to_weight`` table: weight for nice levels -20..19.
#: Taken from the Linux kernel (kernel/sched/core.c). Nice 0 maps to 1024;
#: each nice level changes CPU share by ~10%, hence the ~1.25x ratio
#: between adjacent entries.
NICE_TO_WEIGHT: tuple[int, ...] = (
    88761, 71755, 56483, 46273, 36291,
    29154, 23254, 18705, 14949, 11916,
    9548, 7620, 6100, 4904, 3906,
    3121, 2501, 1991, 1586, 1277,
    1024, 820, 655, 526, 423,
    335, 272, 215, 172, 137,
    110, 87, 70, 56, 45,
    36, 29, 23, 18, 15,
)

MIN_NICE = -20
MAX_NICE = 19

#: Weight of a nice-0 task; the unit in which weighted loads are expressed.
NICE_0_WEIGHT = NICE_TO_WEIGHT[20]

_task_ids = itertools.count()


def nice_to_weight(nice: int) -> int:
    """Convert a niceness level to a CFS load weight.

    Args:
        nice: niceness in ``[-20, 19]``; lower is more important.

    Returns:
        The integer weight used when computing weighted runqueue loads.

    Raises:
        ConfigurationError: if ``nice`` is outside the valid range.
    """
    if not MIN_NICE <= nice <= MAX_NICE:
        raise ConfigurationError(
            f"nice must be in [{MIN_NICE}, {MAX_NICE}], got {nice}"
        )
    return NICE_TO_WEIGHT[nice - MIN_NICE]


class TaskState(Enum):
    """Lifecycle states of a task.

    The work-conservation proofs assume no task enters or leaves the
    runqueues during balancing (Section 4 of the paper); the simulator
    uses these states to model the full lifecycle outside of that
    assumption, and the churn workload exercises the boundary.
    """

    READY = "ready"        #: waiting in some core's runqueue
    RUNNING = "running"    #: the current task of some core
    BLOCKED = "blocked"    #: sleeping (I/O, barrier, lock); on no runqueue
    FINISHED = "finished"  #: all work complete; on no runqueue


@dataclass
class Task:
    """A schedulable thread.

    Attributes:
        tid: unique task id, assigned automatically when not provided.
        nice: niceness in ``[-20, 19]``; converted to ``weight``.
        work: total CPU time units this task needs before finishing.
            ``None`` means the task runs forever (pure balancing studies).
        name: optional human-readable label used in traces.
        state: current :class:`TaskState`.
        executed: CPU time units consumed so far.
        migrations: number of times the task moved between cores.
        last_core: id of the core the task last ran or was enqueued on,
            or ``None`` if it has never been placed. Used by locality-aware
            choice functions and by migration accounting.
    """

    tid: int = field(default_factory=lambda: next(_task_ids))
    nice: int = 0
    work: int | None = None
    name: str = ""
    state: TaskState = TaskState.READY
    executed: int = 0
    migrations: int = 0
    last_core: int | None = None

    def __post_init__(self) -> None:
        self.weight = nice_to_weight(self.nice)
        if self.work is not None and self.work < 0:
            raise ConfigurationError(f"work must be >= 0, got {self.work}")

    @property
    def remaining(self) -> int | None:
        """CPU time units left, or ``None`` for an infinite task."""
        if self.work is None:
            return None
        return max(0, self.work - self.executed)

    @property
    def finished(self) -> bool:
        """Whether the task has consumed all of its work."""
        return self.work is not None and self.executed >= self.work

    def run_for(self, units: int) -> int:
        """Consume up to ``units`` of CPU time.

        Args:
            units: time units offered by the executing core.

        Returns:
            The number of units actually consumed (less than ``units``
            only when the task finishes mid-slice).
        """
        if units < 0:
            raise ConfigurationError(f"units must be >= 0, got {units}")
        if self.work is None:
            self.executed += units
            return units
        consumable = min(units, self.work - self.executed)
        self.executed += consumable
        if self.finished:
            self.state = TaskState.FINISHED
        return consumable

    def note_migration(self, dst_core: int) -> None:
        """Record a migration onto ``dst_core`` for accounting."""
        if self.last_core is not None and self.last_core != dst_core:
            self.migrations += 1
        self.last_core = dst_core

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or f"task{self.tid}"
        return (
            f"Task({label}, nice={self.nice}, state={self.state.value},"
            f" executed={self.executed}/{self.work})"
        )


def make_tasks(count: int, nice: int = 0, work: int | None = None,
               name_prefix: str = "t") -> list[Task]:
    """Create ``count`` identical tasks, convenience for tests and workloads.

    Args:
        count: number of tasks to create; must be non-negative.
        nice: niceness applied to every task.
        work: per-task work units (``None`` for infinite tasks).
        name_prefix: tasks are named ``{prefix}{index}``.

    Returns:
        A list of freshly created :class:`Task` objects in READY state.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    return [
        Task(nice=nice, work=work, name=f"{name_prefix}{i}")
        for i in range(count)
    ]

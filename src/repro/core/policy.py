"""The three-step policy abstraction (Figure 1 of the paper).

The paper decomposes one core's load-balancing operation into three steps
so that each can be verified in isolation:

1. **Filter** (:meth:`Policy.can_steal`): from all cores, keep only those
   this core may steal from. Lock-free, read-only, may act on stale data.
2. **Choice** (:meth:`Policy.choose`): pick one core among the filtered
   candidates. This is where all the "smart placement" heuristics live —
   NUMA, cache locality, priorities — and the proofs ignore it entirely,
   requiring only that the chosen core is one of the candidates
   (Listing 1's ``ensuring(res => cores.contains(res))``).
3. **Steal** (:meth:`Policy.steal_amount` executed by the balancer): with
   both runqueues locked, re-check the filter against live state and, if
   it still holds, migrate that many tasks.

A policy also defines its **load metric** (:meth:`Policy.load`), the
user-defined quantity being balanced — plain thread counts in Listing 1,
niceness-weighted counts for CFS-like fairness. The work-conservation
obligations are stated against thread counts (idle/overloaded are
structural properties), while the *filter* may use any load metric; the
verification layer checks the two agree where it matters (Lemma 1).

Policies must keep ``can_steal``/``choose``/``load`` pure: they receive
immutable :class:`~repro.core.cpu.CoreSnapshot` views during selection, so
mutation is impossible by construction, matching the model's requirement
that "the selection phase may not modify runqueues".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.core.cpu import CoreSnapshot, CoreView
from repro.core.errors import ConfigurationError
from repro.core.task import NICE_0_WEIGHT


@dataclass(frozen=True)
class LoadView:
    """A synthetic :class:`~repro.core.cpu.CoreView` built from a load count.

    The verification layer reasons over abstract states that are plain
    integer vectors ("core i has load 3"). ``LoadView`` lets the *real*
    policy code run against those abstract states without materialising
    tasks and runqueues: a core with load ``k > 0`` is modelled as one
    running task plus ``k - 1`` ready tasks, all at nice 0.

    Attributes:
        cid: core id.
        load_count: total threads on the core.
        node: NUMA node (defaults to 0; abstract states are topology-free
            unless the scope says otherwise).
    """

    cid: int
    load_count: int
    node: int = 0

    def __post_init__(self) -> None:
        if self.load_count < 0:
            raise ConfigurationError(
                f"load_count must be >= 0, got {self.load_count}"
            )

    @property
    def nr_ready(self) -> int:
        """Ready tasks: all but the one modelled as running."""
        return max(0, self.load_count - 1)

    @property
    def has_current(self) -> bool:
        """A core with any load is modelled as running one task."""
        return self.load_count > 0

    @property
    def weighted_load(self) -> int:
        """All modelled tasks are nice-0."""
        return self.load_count * NICE_0_WEIGHT

    @property
    def nr_threads(self) -> int:
        """Total threads on the core."""
        return self.load_count


class Policy(ABC):
    """A scheduling policy expressed in the three-step abstraction.

    Subclasses override :meth:`can_steal` (mandatory — it is the object of
    the proofs) and optionally :meth:`load`, :meth:`choose` and
    :meth:`steal_amount`. All four methods must be pure functions of their
    arguments.

    Attributes:
        name: identifier used in proof reports and benchmark output.
    """

    #: Identifier used in reports; subclasses override.
    name: str = "policy"

    #: What the *choice* step may observe, which bounds the symmetry
    #: quotients that are sound under ``choice_mode='policy'``:
    #: ``"renaming"`` — choice depends only on loads (and deterministic
    #: tie-breaks), invariant under any core renaming; ``"distance"`` —
    #: choice consults NUMA distances, invariant only under
    #: distance-preserving renamings; ``"none"`` — choice is stateful
    #: (e.g. seeded-random), equivariant under no renaming at all.
    #: Irrelevant in ``choice_mode='all'``, which never calls ``choose``.
    choice_invariance: str = "renaming"

    #: What the *filter* (and steal amount) may observe, which decides
    #: whether the packed transition kernel
    #: (:mod:`repro.verify.kernel`) may stand in for the tuple executor:
    #: ``"loads"`` — ``can_steal``/``steal_amount`` depend only on the
    #: scalar load fields of the two views (``nr_ready``,
    #: ``has_current``, ``nr_threads``, ``weighted_load``), never on
    #: ``cid``, ``node``, ``version``, task identities, or external
    #: state — true of every policy in this library; ``"scoped-loads"``
    #: — loads plus a static cid-based pair admission (the policy must
    #: expose ``core_to_group``); ``"none"`` — anything else, which
    #: disables the kernel. Subclasses whose filter consults cids,
    #: nodes, or mutable state MUST override this, or the kernel would
    #: silently compute wrong successors.
    filter_invariance: str = "loads"

    def load(self, core: CoreView) -> float:
        """The user-defined load metric (Listing 1's ``load()``).

        Default: thread count — ``ready.size + current.size``.
        """
        return core.nr_threads

    @abstractmethod
    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Step 1 — the filter: may ``thief`` steal from ``stealee``?

        Called lock-free on snapshots during selection and again on live
        cores, under both runqueue locks, immediately before stealing
        (Listing 1 line 12). A ``False`` on re-check is an optimistic
        failure, not an error.
        """

    def choose(self, thief: CoreView,
               candidates: Sequence[CoreSnapshot]) -> CoreSnapshot:
        """Step 2 — the choice: pick a victim among filtered candidates.

        Default: the most loaded candidate (ties broken by lowest core
        id, keeping rounds deterministic). The balancer enforces the
        Listing 1 postcondition that the result is one of ``candidates``.

        Args:
            thief: the stealing core's view of itself.
            candidates: non-empty filtered snapshots.
        """
        return max(candidates, key=lambda c: (self.load(c), -c.cid))

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        """Step 3 — how many tasks to migrate once the re-check passed.

        Default: one task, as in Listing 1's ``stealOneThread``. The
        balancer additionally clamps to the victim's ready-task count
        (the running task can never be stolen).
        """
        return 1

    def describe(self) -> str:
        """One-line human-readable description for reports."""
        doc = (self.__doc__ or "").strip().splitlines()
        return f"{self.name}: {doc[0] if doc else 'no description'}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def filter_candidates(policy: Policy, thief: CoreView,
                      snapshots: Sequence[CoreSnapshot]) -> list[CoreSnapshot]:
    """Apply step 1: keep the cores ``thief`` may steal from.

    A core never steals from itself; everything else is up to the
    policy's filter.

    Args:
        policy: the policy whose filter to apply.
        thief: the stealing core's self-view.
        snapshots: observations of all cores (including the thief's own,
            which is skipped).

    Returns:
        Snapshots that passed the filter, in core-id order.
    """
    return [
        snap for snap in snapshots
        if snap.cid != thief.cid and policy.can_steal(thief, snap)
    ]

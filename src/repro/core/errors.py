"""Exception hierarchy for the ``repro`` scheduler library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid parameters.

    Raised eagerly, at construction time, so that a misconfigured
    simulation fails before any round executes.
    """


class SchedulingInvariantError(ReproError):
    """A scheduler invariant was violated at runtime.

    These errors indicate a bug in a policy or in the balancer protocol
    (for example a task appearing on two runqueues at once, or a steal
    leaving its victim idle). They are never expected during normal
    operation of a verified policy and therefore fail loudly rather than
    being silently recorded.
    """


class LockProtocolError(ReproError):
    """The two-runqueue locking protocol was violated.

    Raised when a core releases a lock it does not hold, acquires locks
    out of the canonical order, or mutates a runqueue without holding its
    lock while lock enforcement is enabled.
    """


class SelectionPhasePurityError(ReproError):
    """A policy mutated shared state during the lock-free selection phase.

    The paper's model (Section 3.1) requires the selection phase to be
    read-only: "the selection phase may not modify runqueues, and all
    accesses to shared variables must be read-only". The balancer hands
    policies immutable snapshots, and the DSL validator rejects mutating
    expressions; this error is the runtime backstop for hand-written
    policies that try to cheat.
    """


class VerificationError(ReproError):
    """A verification run could not be carried out.

    This signals a problem with the verification *setup* (empty scope,
    inconsistent bounds), not a disproved obligation. Disproved
    obligations are reported as :class:`~repro.verify.obligations.ProofResult`
    values carrying a counterexample, because a falsified lemma is a
    result, not an error.
    """


class DslError(ReproError):
    """Base class for DSL front-end failures."""


class DslSyntaxError(DslError):
    """The policy source text could not be parsed.

    Carries the 1-based ``line`` and ``column`` of the first offending
    token so error messages can point into the source.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DslValidationError(DslError):
    """The policy parsed but violates a static well-formedness rule.

    Examples: a ``filter`` expression that calls a mutating helper, a
    ``steal`` clause whose amount can exceed the victim's surplus, or a
    ``choice`` expression that can return a core outside the filtered
    candidate list.
    """

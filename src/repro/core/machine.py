"""The simulated multicore machine.

A :class:`Machine` bundles the cores, their runqueues, and the NUMA
topology, and offers the two operations the scheduler model of Section 3.1
needs: a consistent-enough *snapshot* for the lock-free selection phase
(each core snapshot is internally consistent; the vector across cores may
be stale, exactly like lock-free reads of other cores' state), and global
invariant checks (thread conservation) that the verification layer uses
as its baseline soundness net.

Machines can be built directly from *load vectors* — e.g. ``[0, 1, 2]``
for the three-core counterexample of Section 4.3 — which is the
representation the model checker enumerates.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.cpu import Core, CoreSnapshot
from repro.core.errors import ConfigurationError, SchedulingInvariantError
from repro.core.runqueue import validate_disjoint
from repro.core.task import Task, TaskState
from repro.topology.numa import NumaTopology, uniform_topology


class Machine:
    """N cores with per-core runqueues on a NUMA topology.

    Attributes:
        topology: the machine's :class:`~repro.topology.numa.NumaTopology`.
        cores: list of :class:`~repro.core.cpu.Core`, indexed by core id.
    """

    def __init__(self, n_cores: int | None = None,
                 topology: NumaTopology | None = None) -> None:
        """Create a machine.

        Args:
            n_cores: number of cores; ignored when ``topology`` is given.
            topology: explicit topology; defaults to a single-node (UMA)
                machine of ``n_cores`` cores.

        Raises:
            ConfigurationError: if neither argument is provided or
                ``n_cores`` disagrees with the topology.
        """
        if topology is None:
            if n_cores is None:
                raise ConfigurationError(
                    "Machine needs n_cores or an explicit topology"
                )
            topology = uniform_topology(n_cores)
        elif n_cores is not None and n_cores != topology.n_cores:
            raise ConfigurationError(
                f"n_cores={n_cores} disagrees with topology"
                f" ({topology.n_cores} cores)"
            )
        self.topology = topology
        self.cores = [
            Core(cid, node=topology.node_of(cid))
            for cid in range(topology.n_cores)
        ]

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def n_cores(self) -> int:
        """Number of cores on the machine."""
        return len(self.cores)

    def core(self, cid: int) -> Core:
        """Return the core with id ``cid``."""
        return self.cores[cid]

    def __iter__(self):
        return iter(self.cores)

    def snapshot(self) -> list[CoreSnapshot]:
        """Snapshot every core for a lock-free selection phase.

        Each per-core snapshot is consistent; the list as a whole is only
        as consistent as lock-free reads can be, which is the model's
        intent: selection acts on possibly-stale observations.
        """
        return [core.snapshot() for core in self.cores]

    # ------------------------------------------------------------------
    # aggregate state
    # ------------------------------------------------------------------

    def loads(self) -> list[int]:
        """Thread-count load of every core (Listing 1's ``load()``)."""
        return [core.nr_threads for core in self.cores]

    def weighted_loads(self) -> list[int]:
        """CFS-weighted load of every core."""
        return [core.weighted_load for core in self.cores]

    def total_threads(self) -> int:
        """Total tasks on the machine (running + ready)."""
        return sum(core.nr_threads for core in self.cores)

    def idle_cores(self) -> list[int]:
        """Ids of idle cores (no current task, empty runqueue)."""
        return [core.cid for core in self.cores if core.idle]

    def overloaded_cores(self) -> list[int]:
        """Ids of overloaded cores (two or more threads)."""
        return [core.cid for core in self.cores if core.overloaded]

    def is_work_conserving_state(self) -> bool:
        """Whether the *current state* wastes no core.

        True iff no core is idle while another is overloaded — the
        condition that must eventually hold forever for the scheduler to
        be work-conserving (Section 3.2). A single state satisfying this
        is necessary but not sufficient; the verification layer reasons
        about whole executions.
        """
        return not (self.idle_cores() and self.overloaded_cores())

    def tasks(self) -> list[Task]:
        """All tasks currently visible to the scheduler, in core order."""
        out: list[Task] = []
        for core in self.cores:
            if core.current is not None:
                out.append(core.current)
            out.extend(core.runqueue)
        return out

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------

    def place_task(self, task: Task, cid: int) -> None:
        """Enqueue ``task`` on core ``cid``'s runqueue."""
        task.state = TaskState.READY
        self.cores[cid].runqueue.push(task)

    def place_tasks(self, tasks: Iterable[Task], cid: int) -> None:
        """Enqueue several tasks on core ``cid``'s runqueue."""
        for task in tasks:
            self.place_task(task, cid)

    def dispatch_all(self) -> None:
        """Have every core pick a current task from its runqueue if idle."""
        for core in self.cores:
            core.pick_next()

    @classmethod
    def from_loads(cls, loads: Sequence[int],
                   topology: NumaTopology | None = None,
                   nice: int = 0,
                   dispatch: bool = True) -> "Machine":
        """Build a machine whose cores carry the given thread counts.

        This is the bridge between the verification layer's abstract
        states (integer load vectors) and concrete machines: core ``i``
        receives ``loads[i]`` nice-``nice`` infinite tasks, and, when
        ``dispatch`` is true, immediately runs one of them.

        Args:
            loads: per-core thread counts; e.g. ``[0, 1, 2]`` builds the
                Section 4.3 counterexample machine.
            topology: optional topology (must match ``len(loads)``).
            nice: niceness of the created tasks.
            dispatch: whether cores pick a current task immediately.

        Returns:
            The populated machine.
        """
        if any(load < 0 for load in loads):
            raise ConfigurationError("loads must be >= 0")
        machine = cls(n_cores=len(loads), topology=topology)
        for cid, load in enumerate(loads):
            for k in range(load):
                machine.place_task(
                    Task(nice=nice, name=f"c{cid}w{k}"), cid
                )
        if dispatch:
            machine.dispatch_all()
        return machine

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate global scheduler invariants, raising on violation.

        Checks:
            * no task appears on two runqueues (thread conservation);
            * no task is both current somewhere and queued somewhere;
            * every current task is in RUNNING state;
            * core ids are dense and match runqueue owners.

        Raises:
            SchedulingInvariantError: describing the first violation.
        """
        validate_disjoint([core.runqueue for core in self.cores])
        current_ids: dict[int, int] = {}
        for core in self.cores:
            if core.runqueue.owner != core.cid:
                raise SchedulingInvariantError(
                    f"core {core.cid} owns runqueue of {core.runqueue.owner}"
                )
            if core.current is None:
                continue
            tid = core.current.tid
            if tid in current_ids:
                raise SchedulingInvariantError(
                    f"task {tid} current on cores {current_ids[tid]}"
                    f" and {core.cid}"
                )
            current_ids[tid] = core.cid
            if core.current.state is not TaskState.RUNNING:
                raise SchedulingInvariantError(
                    f"current task {tid} on core {core.cid} is in state"
                    f" {core.current.state.value}, expected running"
                )
        queued_ids = {
            task.tid
            for core in self.cores
            for task in core.runqueue
        }
        both = queued_ids & set(current_ids)
        if both:
            raise SchedulingInvariantError(
                f"tasks {sorted(both)} are simultaneously current and queued"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(cores={self.n_cores}, loads={self.loads()})"

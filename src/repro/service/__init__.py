"""repro.service — verification-as-a-service.

The client side of the service landed across earlier PRs: sessions
stream :class:`~repro.api.session.ProgressEvent` values as they happen,
results carry store-key provenance, and a content-addressed
:class:`~repro.store.backends.FileStore` answers warm requests with
zero exploration. This package is the service itself — the pieces that
let a *fleet* share one proof cache and let plain HTTP clients submit
work:

* :mod:`repro.service.wire` — the store service's framed JSON protocol
  (length-prefixed frames, shared-secret HMAC challenge/response, a
  version handshake that refuses skewed peers).
* :mod:`repro.service.server` — :class:`StoreServer`, a threaded TCP
  server fronting a :class:`~repro.store.backends.FileStore`; behind
  ``python -m repro serve-store``.
* :mod:`repro.service.netstore` — :class:`NetworkStore`, a
  :class:`~repro.store.backends.ResultStore` client with connect/read
  timeouts, bounded retry with backoff, and graceful degradation: an
  unreachable server turns every lookup into a miss, so the inner
  engine still completes the request. Accepted anywhere ``--store DIR``
  works, spelled ``--store tcp://host:port``.
* :mod:`repro.service.http` — the stdlib-asyncio HTTP front end behind
  ``python -m repro serve``: POST a spec file, stream the same events
  ``aiter_events`` yields as NDJSON or SSE, read ``/healthz`` and
  ``/metrics``.

Deployment quickstart, the auth model, and the eviction policy are in
``docs/service.md``.
"""

from typing import Any

__all__ = [
    "NetworkStore",
    "SERVICE_WIRE_VERSION",
    "ServiceProtocolError",
    "StoreServer",
    "StoreUnavailable",
    "VerificationService",
    "auth_digest",
    "is_store_url",
    "parse_store_url",
]

# Exports resolve lazily (PEP 562) so that `python -m repro --help` —
# which registers the serve/serve-store parsers — does not pay for the
# session, store, and wire machinery behind them.
_EXPORTS = {
    "NetworkStore": "netstore",
    "StoreUnavailable": "netstore",
    "is_store_url": "netstore",
    "parse_store_url": "netstore",
    "StoreServer": "server",
    "VerificationService": "http",
    "SERVICE_WIRE_VERSION": "wire",
    "ServiceProtocolError": "wire",
    "auth_digest": "wire",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(f"{__name__}.{module_name}"),
                   name)

"""The proof-store server: one ``FileStore``, any number of engines.

:class:`StoreServer` listens on a TCP port and speaks the framed JSON
protocol of :mod:`repro.service.wire`, fronting any backend with the
raw-entry face (``load_text``/``save_text`` — in practice a
:class:`~repro.store.backends.FileStore`). A ``--distributed`` or async
worker fleet pointed at it with ``--store tcp://host:port`` shares one
cache: the first engine to prove a scope pays for it, everyone else
replays it.

The server is deliberately dumb about *content*: it moves raw entry
documents and lets both ends validate. ``save_text`` refuses any
document the store could not read back (wrong address, skewed wire
version, malformed result), and every client re-validates what it
receives — so the server can corrupt availability, never answers.

Threading model: one daemon thread per connection plus one acceptor;
the :class:`~repro.store.backends.FileStore` is already safe for
concurrent writers (atomic temp-file replaces), and the counters take
a lock. This is a cache, not a database — a crashed server loses
nothing but warm latency.
"""

from __future__ import annotations

import secrets
import socket
import threading
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.store.backends import StoreError

from repro.service import wire

#: How long a connection may sit idle mid-handshake before the server
#: reclaims its thread.
HANDSHAKE_TIMEOUT_S = 10.0


class StoreServer:
    """A threaded TCP front for one result store.

    Args:
        store: the backend to front; must expose the raw-entry face
            (``load_text``/``save_text``) next to the
            :class:`~repro.store.backends.ResultStore` protocol.
        host: interface to bind.
        port: port to bind (0 picks a free one; see :attr:`address`).
        secret: when given, every connection must answer the HMAC
            challenge (see :mod:`repro.service.wire`); when ``None``
            the server is open.
    """

    def __init__(self, store: Any, host: str = "127.0.0.1",
                 port: int = 0, *, secret: str | None = None) -> None:
        self.store = store
        self.secret = secret
        self._listener = socket.create_server((host, port))
        # A blocked accept() does not reliably wake when another thread
        # closes the listener; poll the shutdown flag instead.
        self._listener.settimeout(0.1)
        self._closed = threading.Event()
        self._accept_thread: threading.Thread | None = None
        # Counters live in a MetricsRegistry so the server can be
        # scraped (via registry.render()) next to the HTTP front end;
        # stats() keeps serving the flat dict GET_STATS always carried.
        self.registry = MetricsRegistry()
        self._stats = {
            name: self.registry.counter(f"repro_store_{name}_total",
                                        help_text)
            for name, help_text in (
                ("hits", "GET frames answered with an entry."),
                ("misses", "GET frames answered with a miss."),
                ("puts", "PUT frames accepted."),
                ("removals", "REMOVE frames that deleted an entry."),
                ("connections", "TCP connections accepted."),
                ("denied", "Connections refused at the handshake."),
            )
        }

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolved even when created with
        port 0."""
        host, port = self._listener.getsockname()[:2]
        return host, port

    def start(self) -> "StoreServer":
        """Start accepting connections on a background thread."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-store-server",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections on the calling thread until closed."""
        self._accept_loop()

    def close(self) -> None:
        """Stop accepting and close the listening socket. In-flight
        connections finish their current frame and then drop."""
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- observability --------------------------------------------------

    def stats(self) -> dict[str, int]:
        """A snapshot of the request counters."""
        return {name: int(counter.value)
                for name, counter in self._stats.items()}

    def _count(self, counter: str) -> None:
        self._stats[counter].inc()

    # -- the accept loop ------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue  # re-check the shutdown flag
            except OSError:
                return  # listener closed
            conn.settimeout(None)
            self._count("connections")
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-store-conn", daemon=True,
            ).start()

    # -- one connection -------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                if not self._handshake(conn):
                    return
                conn.settimeout(None)
                while not self._closed.is_set():
                    try:
                        kind, payload = wire.recv_frame(conn)
                    except wire.ServiceConnectionClosed:
                        return
                    if kind == wire.BYE:
                        return
                    self._answer(conn, kind, payload)
        except (wire.ServiceProtocolError, OSError):
            return  # a broken peer costs one thread, nothing shared

    def _handshake(self, conn: socket.socket) -> bool:
        """Challenge the peer; True when it may proceed."""
        conn.settimeout(HANDSHAKE_TIMEOUT_S)
        nonce = secrets.token_hex(16)
        wire.send_frame(conn, wire.CHALLENGE, {
            "nonce": nonce, "version": wire.SERVICE_WIRE_VERSION,
        })
        try:
            kind, payload = wire.recv_frame(conn)
        except wire.ServiceProtocolError:
            # Includes version skew: the peer's hello frame carries its
            # version in the envelope and decode_frame refused it.
            self._deny(conn, "unreadable hello (version skew?)")
            return False
        except socket.timeout:
            return False
        if kind != wire.HELLO:
            self._deny(conn, f"expected hello, got {kind!r}")
            return False
        if payload.get("version") != wire.SERVICE_WIRE_VERSION:
            self._deny(conn, "service wire version mismatch")
            return False
        if self.secret is not None and not wire.verify_auth(
                self.secret, nonce, payload.get("auth")):
            self._deny(conn, "authentication failed")
            return False
        wire.send_frame(conn, wire.WELCOME, {})
        return True

    def _deny(self, conn: socket.socket, reason: str) -> None:
        self._count("denied")
        try:
            wire.send_frame(conn, wire.DENIED, {"reason": reason})
        except OSError:
            pass

    def _answer(self, conn: socket.socket, kind: str,
                payload: dict[str, Any]) -> None:
        if kind == wire.GET:
            key = str(payload.get("key", ""))
            text = self.store.load_text(key)
            if text is None:
                self._count("misses")
                wire.send_frame(conn, wire.MISS, {"key": key})
            else:
                self._count("hits")
                self._touch(key)
                wire.send_frame(conn, wire.ENTRY,
                                {"key": key, "entry": text})
        elif kind == wire.PUT:
            key = str(payload.get("key", ""))
            entry = payload.get("entry")
            if not isinstance(entry, str):
                wire.send_frame(conn, wire.ERROR,
                                {"reason": "put without an entry body"})
                return
            try:
                self.store.save_text(key, entry)
            except StoreError as exc:
                wire.send_frame(conn, wire.ERROR, {"reason": str(exc)})
                return
            self._count("puts")
            wire.send_frame(conn, wire.OK, {"key": key})
        elif kind == wire.LIST:
            wire.send_frame(conn, wire.KEYS,
                            {"keys": list(self.store.keys())})
        elif kind == wire.REMOVE:
            key = str(payload.get("key", ""))
            removed = bool(self.store.remove(key))
            if removed:
                self._count("removals")
            wire.send_frame(conn, wire.OK,
                            {"key": key, "removed": removed})
        elif kind == wire.TOUCH:
            key = str(payload.get("key", ""))
            self._touch(key)
            wire.send_frame(conn, wire.OK, {"key": key})
        elif kind == wire.GET_STATS:
            wire.send_frame(conn, wire.STATS, self.stats())
        else:
            wire.send_frame(conn, wire.ERROR,
                            {"reason": f"unexpected frame kind {kind!r}"})

    def _touch(self, key: str) -> None:
        toucher = getattr(self.store, "touch", None)
        if toucher is not None:
            toucher(key)

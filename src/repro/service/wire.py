"""The proof-store service's wire protocol.

Framed like :mod:`repro.verify.wire` — every message is one
``4-byte big-endian length || UTF-8 JSON body`` frame — but JSON
*only*: store entries are JSON documents already, and a cache server
exposed on a network must never execute ``pickle`` from its peers. The
whole protocol can be spoken (and debugged) with ``nc`` plus a hex
editor for the length prefix.

Every envelope carries ``{"v": SERVICE_WIRE_VERSION, "kind",
"payload"}``; :func:`decode_frame` rejects any other version with
:class:`ServiceProtocolError`, so a client and server from different
releases refuse each other at the handshake instead of mis-serving
entries.

Handshake and authentication
----------------------------

On connect the server speaks first::

    server -> client   challenge {"nonce": <hex>, "version": V}
    client -> server   hello     {"version": V, "auth": <hmac hex>}
    server -> client   welcome   {}           (or: denied {...}, close)

``auth`` is ``HMAC-SHA256(secret, nonce)`` over the server's random
per-connection nonce (:func:`auth_digest`) — the shared secret never
crosses the wire, and a captured digest is useless against the next
connection's nonce. A server started without a secret accepts any
``auth`` value (including none); a server started *with* one compares
digests in constant time and drops the connection on mismatch.

After the handshake the client issues requests (``get``/``put``/
``keys``/``remove``/``touch``/``stats``/``bye``) and the server answers
each with exactly one response frame (``entry``/``miss``/``ok``/
``keys``/``stats``/``error``).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import socket
import struct
from typing import Any

from repro.core.errors import VerificationError

#: Protocol version; bump on any incompatible envelope or payload
#: change. Independent of :data:`repro.verify.wire.WIRE_VERSION` (the
#: coordinator/worker protocol): store *entries* carry their own wire
#: version inside the entry document, which the client re-validates on
#: every load.
SERVICE_WIRE_VERSION = 1

#: Refuse frames larger than this (corrupt length prefix / wrong peer).
MAX_FRAME_BYTES = 1 << 26

_LENGTH = struct.Struct("!I")

# Server -> client kinds.
CHALLENGE = "challenge"  #: first frame: {"nonce", "version"}
WELCOME = "welcome"      #: handshake accepted
DENIED = "denied"        #: handshake rejected: {"reason"}; then close
ENTRY = "entry"          #: get hit: {"key", "entry"}
MISS = "miss"            #: get miss: {"key"}
OK = "ok"                #: put/remove/touch ack: {"key", ...}
KEYS = "keys"            #: keys response: {"keys": [...]}
STATS = "stats"          #: stats response: counter mapping
ERROR = "error"          #: request-level failure: {"reason"}

# Client -> server kinds.
HELLO = "hello"          #: handshake response: {"version", "auth"}
GET = "get"              #: {"key"}
PUT = "put"              #: {"key", "entry"}
LIST = "list"            #: {} -> KEYS
REMOVE = "remove"        #: {"key"} -> OK {"removed": bool}
TOUCH = "touch"          #: {"key"} -> OK (LRU stamp only)
GET_STATS = "get-stats"  #: {} -> STATS
BYE = "bye"              #: close the session cleanly

#: Kinds a conforming peer may send (decode rejects everything else).
ALL_KINDS = frozenset({
    CHALLENGE, WELCOME, DENIED, ENTRY, MISS, OK, KEYS, STATS, ERROR,
    HELLO, GET, PUT, LIST, REMOVE, TOUCH, GET_STATS, BYE,
})


class ServiceProtocolError(VerificationError):
    """A frame violated the store service protocol (version, kind,
    size, or encoding)."""


class ServiceConnectionClosed(ServiceProtocolError):
    """The peer closed the connection mid-frame or between frames."""


def auth_digest(secret: str, nonce: str) -> str:
    """The HMAC-SHA256 hex digest a client answers a challenge with."""
    return hmac.new(secret.encode("utf-8"), nonce.encode("utf-8"),
                    hashlib.sha256).hexdigest()


def verify_auth(secret: str, nonce: str, digest: object) -> bool:
    """Constant-time check of a client's ``auth`` digest."""
    if not isinstance(digest, str):
        return False
    return hmac.compare_digest(auth_digest(secret, nonce), digest)


def encode_frame(kind: str, payload: dict[str, Any] | None = None) -> bytes:
    """Serialise one envelope to its framed bytes (length prefix
    included).

    Raises:
        ServiceProtocolError: unknown kind or a payload JSON cannot
            express.
    """
    if kind not in ALL_KINDS:
        raise ServiceProtocolError(f"unknown frame kind {kind!r}")
    envelope = {"v": SERVICE_WIRE_VERSION, "kind": kind,
                "payload": payload or {}}
    try:
        body = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ServiceProtocolError(
            f"payload of {kind!r} is not JSON-serialisable: {exc}"
        ) from exc
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> tuple[str, dict[str, Any]]:
    """Parse one frame body back into ``(kind, payload)``.

    Raises:
        ServiceProtocolError: undecodable body, version mismatch, or
            unknown kind.
    """
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceProtocolError(
            f"undecodable frame body: {exc}"
        ) from exc
    if not isinstance(envelope, dict):
        raise ServiceProtocolError(
            f"frame body is {type(envelope).__name__}, expected an"
            " envelope"
        )
    version = envelope.get("v")
    if version != SERVICE_WIRE_VERSION:
        raise ServiceProtocolError(
            f"service wire version mismatch: peer speaks {version!r},"
            f" this build speaks {SERVICE_WIRE_VERSION}"
        )
    kind = envelope.get("kind")
    if kind not in ALL_KINDS:
        raise ServiceProtocolError(f"unknown frame kind {kind!r}")
    payload = envelope.get("payload")
    return kind, payload if isinstance(payload, dict) else {}


def send_frame(sock: socket.socket, kind: str,
               payload: dict[str, Any] | None = None) -> None:
    """Encode and send one frame."""
    sock.sendall(encode_frame(kind, payload))


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n_bytes
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ServiceConnectionClosed(
                f"peer closed with {remaining} of {n_bytes} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               max_frame: int = MAX_FRAME_BYTES,
               ) -> tuple[str, dict[str, Any]]:
    """Receive and decode one frame.

    Honours the socket's configured timeout (``socket.timeout``
    propagates to the caller — the client's read-timeout policy).

    Raises:
        ServiceConnectionClosed: the peer hung up.
        ServiceProtocolError: oversized or malformed frame.
    """
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > max_frame:
        raise ServiceProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte cap"
        )
    return decode_frame(_recv_exact(sock, length))

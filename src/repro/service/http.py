"""The HTTP verification front end (``python -m repro serve``).

A stdlib-``asyncio`` HTTP/1.1 server — no frameworks, no new deps —
that turns the streaming Session API into a service:

* ``POST /run-spec`` with a spec document (the same JSON ``run-spec``
  loads from disk) executes its runs on a worker thread and streams
  every :class:`~repro.api.session.ProgressEvent` back as it happens:
  NDJSON by default, Server-Sent Events when the client sends
  ``Accept: text/event-stream``. The stream's final event carries the
  full report — the exact ``[{"run", "store_key", "result"}, ...]``
  document ``run-spec --json`` writes — plus the exit code. With
  ``Accept: application/json`` the events are skipped and the response
  body *is* that report document.
* Warm requests are answered straight from the configured store: the
  session's lazy caching engine acquires no backend at all, so a fully
  warm ``POST`` explores nothing and returns in store-lookup time.
* ``GET /healthz`` answers liveness; ``GET /metrics`` exposes the
  hit/miss/inflight/eviction counters — as the historical JSON document
  by default, or as Prometheus text exposition (including run-latency,
  store-round-trip, and streamed-event histograms/counters) when the
  client sends ``Accept: text/plain``.
* ``POST /gc`` runs the store's eviction pass (age / LRU-size /
  subsumption policies from the JSON body) and feeds the eviction
  counter.

Authentication mirrors the store server's model at HTTP grain: started
with a secret, every ``POST`` must carry ``Authorization: Bearer
<secret>`` (constant-time compare); reads stay open. Run the service
behind TLS termination if the network is hostile — the secret, unlike
the store protocol's HMAC, does cross this wire.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hmac
import json
import threading
from typing import Any, AsyncIterator, Mapping

from repro.api.request import VerificationRequest
from repro.api.result import VerificationResult
from repro.api.session import ProgressEvent, Session
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER

#: Largest accepted request body (a spec document; far below this).
MAX_BODY_BYTES = 1 << 22

_JSON = "application/json"
_NDJSON = "application/x-ndjson"
_SSE = "text/event-stream"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}


def event_to_dict(event: ProgressEvent) -> dict[str, Any]:
    """One event as a JSON-safe document: ``{"event": <class name>,
    <field>: <value>, ...}``.

    Requests flatten to their one-line description plus kind (the full
    request document already rides in the final report); results to
    verdict and exit code; anything else non-primitive to ``str()``.
    """
    data: dict[str, Any] = {"event": type(event).__name__}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if isinstance(value, VerificationRequest):
            data[field.name] = {"kind": value.kind,
                                "describe": value.describe()}
        elif isinstance(value, VerificationResult):
            data[field.name] = {"verdict": value.verdict.value,
                                "exit_code": value.exit_code}
        elif isinstance(value, (str, int, float, bool)) or value is None:
            data[field.name] = value
        else:
            data[field.name] = str(value)
    return data


class ServiceMetrics:
    """The ``/metrics`` instruments, shared across request handlers.

    Built on :class:`~repro.obs.metrics.MetricsRegistry` so one set of
    instruments serves both wire formats: :meth:`snapshot` keeps the
    historical flat-integer JSON document byte-for-byte, while
    :meth:`render_prometheus` exposes the same families — plus the
    run-latency, store-round-trip, and streamed-event instruments that
    have no flat-integer shape — as Prometheus text exposition.
    """

    _COUNTERS = (
        ("requests", "POST /run-spec requests accepted."),
        ("runs", "Spec runs executed (hit or miss)."),
        ("hits", "Runs answered straight from the store."),
        ("misses", "Runs that actually explored."),
        ("evictions", "Store entries removed via POST /gc."),
        ("failures", "Spec executions that raised."),
    )

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"repro_service_{name}_total",
                                        help_text)
            for name, help_text in self._COUNTERS
        }
        self._inflight = self.registry.gauge(
            "repro_service_inflight", "Specs currently executing.")
        self.run_seconds = self.registry.histogram(
            "repro_service_run_seconds",
            "Wall time of one spec run, by store outcome.",
            labelnames=("outcome",))
        self.stream_events = self.registry.counter(
            "repro_service_stream_events_total",
            "Progress-event documents streamed to clients.")
        self.store_rpc_seconds = self.registry.histogram(
            "repro_service_store_rpc_seconds",
            "NetworkStore round-trips, by request kind.",
            labelnames=("kind",))

    def bump(self, counter: str, by: int = 1) -> None:
        if counter == "inflight":
            self._inflight.inc(by)
        else:
            self._counters[counter].inc(by)

    def observe_run(self, seconds: float, hit: bool) -> None:
        outcome = "hit" if hit else "miss"
        self.run_seconds.labels(outcome=outcome).observe(seconds)

    def observe_store_rpc(self, kind: str, seconds: float,
                          request_bytes: int) -> None:
        """The :attr:`NetworkStore.on_rpc` hook signature."""
        del request_bytes  # latency is the axis worth a histogram
        self.store_rpc_seconds.labels(kind=kind).observe(seconds)

    def snapshot(self) -> dict[str, int]:
        snap = {name: int(child.value)
                for name, child in self._counters.items()}
        snap["inflight"] = int(self._inflight.value)
        return snap

    def render_prometheus(self) -> str:
        return self.registry.render()


class VerificationService:
    """The handler behind ``python -m repro serve``.

    Args:
        store: a :class:`~repro.store.backends.ResultStore` every spec
            run consults (``None`` disables caching — every run is
            cold).
        store_refresh: skip lookups, still store fresh results.
        store_subsume: let proved superset-scope entries answer.
        secret: when given, require ``Authorization: Bearer <secret>``
            on every POST.
    """

    def __init__(self, store: Any | None = None, *,
                 store_refresh: bool = False,
                 store_subsume: bool = False,
                 secret: str | None = None) -> None:
        self.store = store
        self.store_refresh = store_refresh
        self.store_subsume = store_subsume
        self.secret = secret
        self.metrics = ServiceMetrics()
        # A network-backed store reports every round-trip into the
        # store-RPC histogram; local backends have no such hook.
        if store is not None and hasattr(store, "on_rpc"):
            store.on_rpc = self.metrics.observe_store_rpc
        self._server: asyncio.Server | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the resolved address."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port,
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, headers, body = request
                await self._dispatch(writer, method, path, headers, body)
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader,
                            ) -> tuple[str, str, dict[str, str],
                                       bytes] | None:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, target, _version = \
                request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = 0
        # An oversized body is never read; the dispatcher rejects it
        # off the declared length.
        if not 0 < length <= MAX_BODY_BYTES:
            return method.upper(), target, headers, b""
        return method.upper(), target, headers, \
            await reader.readexactly(length)

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       body: bytes, content_type: str = _JSON) -> None:
        writer.write(
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        writer.write(body)
        await writer.drain()

    @staticmethod
    def _json_bytes(document: Any) -> bytes:
        return (json.dumps(document, indent=2, sort_keys=True) + "\n") \
            .encode("utf-8")

    async def _reject(self, writer: asyncio.StreamWriter, status: int,
                      reason: str) -> None:
        await self._respond(writer, status,
                            self._json_bytes({"error": reason}))

    def _authorized(self, headers: Mapping[str, str]) -> bool:
        if self.secret is None:
            return True
        header = headers.get("authorization", "")
        scheme, _, token = header.partition(" ")
        return (scheme.lower() == "bearer"
                and hmac.compare_digest(token.strip(), self.secret))

    # -- routing --------------------------------------------------------

    async def _dispatch(self, writer: asyncio.StreamWriter, method: str,
                        path: str, headers: Mapping[str, str],
                        body: bytes) -> None:
        path = path.split("?", 1)[0]
        with TRACER.span("http.request", "service", method=method,
                         path=path, bytes=len(body)):
            await self._route(writer, method, path, headers, body)

    async def _route(self, writer: asyncio.StreamWriter, method: str,
                     path: str, headers: Mapping[str, str],
                     body: bytes) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200,
                                self._json_bytes({"status": "ok"}))
        elif path == "/metrics" and method == "GET":
            if "text/plain" in headers.get("accept", ""):
                body = self.metrics.render_prometheus().encode("utf-8")
                await self._respond(writer, 200, body,
                                    content_type=_PROMETHEUS)
                return
            document = dict(self.metrics.snapshot())
            document["store"] = (self.store.describe()
                                 if self.store is not None else None)
            await self._respond(writer, 200, self._json_bytes(document))
        elif path == "/run-spec" and method == "POST":
            if not self._authorized(headers):
                await self._reject(writer, 401, "missing or bad bearer"
                                                " token")
                return
            try:
                declared = int(headers.get("content-length", "0"))
            except ValueError:
                declared = 0
            if declared > MAX_BODY_BYTES:
                await self._reject(writer, 413, "spec document too large")
                return
            await self._run_spec(writer, headers, body)
        elif path == "/gc" and method == "POST":
            if not self._authorized(headers):
                await self._reject(writer, 401, "missing or bad bearer"
                                                " token")
                return
            await self._gc(writer, body)
        elif path in ("/healthz", "/metrics", "/run-spec", "/gc"):
            await self._reject(writer, 405, f"{method} not supported"
                                            f" on {path}")
        else:
            await self._reject(writer, 404, f"no such endpoint {path!r}")

    # -- POST /gc -------------------------------------------------------

    async def _gc(self, writer: asyncio.StreamWriter,
                  body: bytes) -> None:
        gc = getattr(self.store, "gc", None)
        if gc is None:
            await self._reject(writer, 400, "the configured store has no"
                                            " eviction pass")
            return
        try:
            options = json.loads(body) if body.strip() else {}
        except json.JSONDecodeError as exc:
            await self._reject(writer, 400, f"gc body is not JSON: {exc}")
            return
        if not isinstance(options, dict):
            await self._reject(writer, 400, "gc body must be an object")
            return
        try:
            report = await asyncio.get_running_loop().run_in_executor(
                None, lambda: gc(
                    max_age_days=options.get("max_age_days"),
                    max_entries=options.get("max_entries"),
                    subsume=bool(options.get("subsume", False)),
                ),
            )
        except (TypeError, ValueError) as exc:
            await self._reject(writer, 400, f"bad gc options: {exc}")
            return
        self.metrics.bump("evictions", len(report.evicted))
        await self._respond(writer, 200, self._json_bytes({
            "checked": report.checked,
            "kept": report.kept,
            "evicted": [[key, reason] for key, reason in report.evicted],
        }))

    # -- POST /run-spec -------------------------------------------------

    async def _run_spec(self, writer: asyncio.StreamWriter,
                        headers: Mapping[str, str], body: bytes) -> None:
        from repro.api.spec import SpecError, parse_spec

        try:
            document = json.loads(body.decode("utf-8"))
            if not isinstance(document, dict):
                raise SpecError("a spec must be a JSON object")
            spec = parse_spec(document)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._reject(writer, 400, f"spec body is not JSON: {exc}")
            return
        except SpecError as exc:
            await self._reject(writer, 400, str(exc))
            return

        accept = headers.get("accept", "")
        mode = (_SSE if _SSE in accept
                else _JSON if _JSON in accept and _NDJSON not in accept
                else _NDJSON)
        self.metrics.bump("requests")
        self.metrics.bump("inflight")
        try:
            if mode == _JSON:
                outcome = await self._execute(spec)
                await self._finish_plain(writer, outcome)
            else:
                await self._stream(writer, spec, mode)
        finally:
            self.metrics.bump("inflight", -1)

    def _session(self, subscriber: Any = None) -> Session:
        return Session(
            subscribers=(subscriber,) if subscriber is not None else (),
            store=self.store,
            store_refresh=self.store_refresh,
            store_subsume=self.store_subsume,
        )

    def _count_run(self, result: VerificationResult) -> None:
        self.metrics.bump("runs")
        hit = result.provenance is not None and result.provenance.hit
        self.metrics.bump("hits" if hit else "misses")
        self.metrics.observe_run(
            float(result.timings.get("total_s", 0.0)), hit)

    @staticmethod
    def _report_entry(run: Any,
                      result: VerificationResult) -> dict[str, Any]:
        from repro.api.report import result_to_dict
        from repro.store.keys import store_key

        # The same shape run-spec --json writes, so an HTTP client and
        # a local run produce interchangeable report documents.
        return {"run": run.name, "store_key": store_key(run.request),
                "result": result_to_dict(result)}

    async def _execute(self, spec: Any) -> dict[str, Any]:
        """Run every spec run on a worker thread; the final report."""
        def work() -> dict[str, Any]:
            session = self._session()
            report, exit_code = [], 0
            for run in spec.runs:
                result = session.run(run.request)
                self._count_run(result)
                report.append(self._report_entry(run, result))
                exit_code = max(exit_code, result.exit_code)
            return {"report": report, "exit_code": exit_code}

        try:
            return await asyncio.get_running_loop().run_in_executor(
                None, work)
        except Exception as exc:  # surfaced as an error document
            self.metrics.bump("failures")
            return {"error": str(exc), "exit_code": 70}

    async def _finish_plain(self, writer: asyncio.StreamWriter,
                            outcome: dict[str, Any]) -> None:
        if "error" in outcome:
            await self._respond(writer, 500, self._json_bytes(outcome))
        else:
            await self._respond(writer, 200,
                                self._json_bytes(outcome["report"]))

    async def _stream(self, writer: asyncio.StreamWriter, spec: Any,
                      mode: str) -> None:
        """Execute the spec on a worker thread, relaying every event."""
        writer.write(
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {mode}\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        async for document in self._spec_events(spec):
            payload = json.dumps(document, sort_keys=True)
            if mode == _SSE:
                writer.write(f"data: {payload}\n\n".encode("utf-8"))
            else:
                writer.write(f"{payload}\n".encode("utf-8"))
            self.metrics.stream_events.inc()
            await writer.drain()

    async def _spec_events(self, spec: Any,
                           ) -> AsyncIterator[dict[str, Any]]:
        """Every event document of a spec execution, ending with either
        ``spec_finished`` (report + exit code) or ``spec_failed``."""
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue[dict[str, Any] | None] = asyncio.Queue()

        def emit(document: dict[str, Any] | None) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, document)

        def work() -> None:
            try:
                session = self._session(
                    lambda event: emit(event_to_dict(event)))
                report, exit_code = [], 0
                for run in spec.runs:
                    emit({"event": "RunStarted", "run": run.name})
                    result = session.run(run.request)
                    self._count_run(result)
                    report.append(self._report_entry(run, result))
                    exit_code = max(exit_code, result.exit_code)
                emit({"event": "spec_finished", "report": report,
                      "exit_code": exit_code})
            except Exception as exc:
                self.metrics.bump("failures")
                emit({"event": "spec_failed", "error": str(exc),
                      "exit_code": 70})
            finally:
                emit(None)

        thread = threading.Thread(target=work, name="repro-serve-spec",
                                  daemon=True)
        thread.start()
        while True:
            document = await queue.get()
            if document is None:
                break
            yield document
        await loop.run_in_executor(None, thread.join)

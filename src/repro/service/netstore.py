"""``NetworkStore``: the proof store behind ``tcp://host:port``.

A :class:`~repro.store.backends.ResultStore` whose entries live on a
:class:`~repro.service.server.StoreServer`. Accepted anywhere
``--store DIR`` works — ``python -m repro prove ... --store
tcp://cache:7App`` is the same run with a shared cache — and designed
around one rule: **the cache may disappear, the answer may not.**

* Connect and read timeouts bound every network wait.
* Connection attempts retry a bounded number of times with exponential
  backoff, then declare the server *down* for a cooldown window —
  subsequent lookups fail fast instead of re-paying the timeout.
* While down (or denied), every protocol method degrades to the empty
  store: ``load`` misses, ``save`` drops the entry, ``keys`` is empty,
  ``remove`` is False. The inner engine simply proves what the cache
  cannot provide; killing the server mid-run costs warm latency, never
  the result.
* Every entry received is re-validated client-side
  (:func:`~repro.store.backends.decode_entry` re-hashes the embedded
  request against the key), so a hostile or corrupt server produces
  misses, not wrong answers.

:meth:`NetworkStore.ping` is the loud variant for startup checks: it
raises :class:`StoreUnavailable` with the server's denial reason, so a
misconfigured ``--store-auth`` surfaces immediately instead of as a
silently cold fleet.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable

from repro.api.result import VerificationResult
from repro.core.errors import VerificationError
from repro.obs.trace import TRACER, trace_clock
from repro.store.backends import StoreError, decode_entry, encode_entry

from repro.service import wire

#: ``--store`` values with this scheme name a store server.
URL_SCHEME = "tcp://"

#: Default seconds to wait for a TCP connect.
DEFAULT_CONNECT_TIMEOUT_S = 2.0
#: Default seconds to wait for each response frame.
DEFAULT_READ_TIMEOUT_S = 10.0
#: Default extra connection attempts after the first failure.
DEFAULT_RETRIES = 2
#: Default first backoff (doubles per retry).
DEFAULT_BACKOFF_S = 0.05
#: Default seconds the server stays declared down after the retry
#: budget is spent.
DEFAULT_COOLDOWN_S = 5.0


class StoreUnavailable(VerificationError):
    """The store server cannot be used (unreachable, or it denied the
    handshake)."""


def is_store_url(value: str) -> bool:
    """Whether a ``--store`` argument names a server, not a directory."""
    return value.strip().lower().startswith(URL_SCHEME)


def parse_store_url(url: str) -> tuple[str, int]:
    """``tcp://host:port`` → ``(host, port)``.

    Raises:
        StoreUnavailable: a malformed URL (wrong scheme, missing or
            non-numeric port).
    """
    stripped = url.strip()
    if not is_store_url(stripped):
        raise StoreUnavailable(
            f"store URL {url!r} does not start with {URL_SCHEME!r}"
        )
    rest = stripped[len(URL_SCHEME):].rstrip("/")
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host:
        raise StoreUnavailable(
            f"store URL {url!r} must be {URL_SCHEME}host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise StoreUnavailable(
            f"store URL {url!r} has non-numeric port {port_text!r}"
        ) from None
    if not 0 < port < 65536:
        raise StoreUnavailable(
            f"store URL {url!r} has out-of-range port {port}"
        )
    return host, port


class NetworkStore:
    """A :class:`~repro.store.backends.ResultStore` served over TCP.

    One persistent authenticated connection, guarded by a lock (the
    caching engine calls from one thread at a time; the lock makes
    sharing an instance across threads merely slow, not wrong).

    Args:
        host: server host.
        port: server port.
        secret: shared secret for the HMAC challenge (must match the
            server's ``--auth``; ``None`` for an open server).
        connect_timeout: seconds per TCP connect attempt.
        read_timeout: seconds per response frame.
        retries: extra connect attempts after the first failure.
        backoff_s: first retry's sleep; doubles per retry.
        cooldown_s: how long the server stays declared down once the
            retry budget is spent (lookups fail fast meanwhile).
    """

    def __init__(self, host: str, port: int, *,
                 secret: str | None = None,
                 connect_timeout: float = DEFAULT_CONNECT_TIMEOUT_S,
                 read_timeout: float = DEFAULT_READ_TIMEOUT_S,
                 retries: int = DEFAULT_RETRIES,
                 backoff_s: float = DEFAULT_BACKOFF_S,
                 cooldown_s: float = DEFAULT_COOLDOWN_S) -> None:
        self.host = host
        self.port = port
        self.secret = secret
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._down_until = 0.0
        self._denied: str | None = None
        # Injectable for fault-injection tests.
        self._sleep: Callable[[float], None] = time.sleep
        self._clock: Callable[[], float] = time.monotonic
        #: RPC observer: called after every exchange with ``(kind,
        #: seconds, request_bytes)`` — success or failure, bytes 0 when
        #: the frame never left. The HTTP service hooks its round-trip
        #: histogram here.
        self.on_rpc: Callable[[str, float, int], None] | None = None

    @classmethod
    def from_url(cls, url: str, **kwargs: Any) -> "NetworkStore":
        """Build from a ``tcp://host:port`` spelling."""
        host, port = parse_store_url(url)
        return cls(host, port, **kwargs)

    def describe(self) -> str:
        return f"net[{URL_SCHEME}{self.host}:{self.port}]"

    # -- connection management ------------------------------------------

    def close(self) -> None:
        """Drop the connection (it reopens on the next use)."""
        with self._lock:
            self._drop()

    def ping(self) -> None:
        """Connect and authenticate, raising on failure.

        Raises:
            StoreUnavailable: unreachable server, version skew, or a
                denied handshake — with the reason.
        """
        with self._lock:
            self._down_until = 0.0  # a ping is an explicit fresh try
            self._denied = None
            self._ensure_connected()

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected(self) -> socket.socket:
        """The live connection, dialling (with bounded retry) if needed.

        Raises:
            StoreUnavailable: still in cooldown, previously denied, or
                every attempt failed.
        """
        if self._sock is not None:
            return self._sock
        if self._denied is not None:
            raise StoreUnavailable(
                f"store server {self.host}:{self.port} denied this"
                f" client: {self._denied}"
            )
        now = self._clock()
        if now < self._down_until:
            raise StoreUnavailable(
                f"store server {self.host}:{self.port} is in its"
                " unreachable cooldown"
            )
        failure: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self._sleep(self.backoff_s * (2 ** (attempt - 1)))
            try:
                sock = self._dial()
                self._sock = sock
                self._down_until = 0.0
                return sock
            except StoreUnavailable:
                self._drop()
                raise  # denial is final, not retryable
            except (OSError, wire.ServiceProtocolError) as exc:
                failure = exc
                self._drop()
        self._down_until = self._clock() + self.cooldown_s
        raise StoreUnavailable(
            f"store server {self.host}:{self.port} unreachable after"
            f" {self.retries + 1} attempts: {failure}"
        )

    def _dial(self) -> socket.socket:
        """One connect + handshake attempt."""
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.connect_timeout)
        try:
            sock.settimeout(self.read_timeout)
            kind, payload = wire.recv_frame(sock)
            if kind != wire.CHALLENGE:
                raise wire.ServiceProtocolError(
                    f"expected a challenge, got {kind!r}"
                )
            auth = (wire.auth_digest(self.secret, str(payload.get("nonce")))
                    if self.secret is not None else None)
            wire.send_frame(sock, wire.HELLO, {
                "version": wire.SERVICE_WIRE_VERSION, "auth": auth,
            })
            kind, payload = wire.recv_frame(sock)
            if kind == wire.DENIED:
                self._denied = str(payload.get("reason", "denied"))
                raise StoreUnavailable(
                    f"store server {self.host}:{self.port} denied this"
                    f" client: {self._denied}"
                )
            if kind != wire.WELCOME:
                raise wire.ServiceProtocolError(
                    f"expected a welcome, got {kind!r}"
                )
            return sock
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise

    def _request(self, kind: str, payload: dict[str, Any],
                 ) -> tuple[str, dict[str, Any]]:
        """One request/response exchange.

        A failure mid-exchange retries once on a fresh connection (the
        persistent socket may simply have been idled out); a second
        failure propagates as :class:`StoreUnavailable`.

        Observability: the exchange is traced as a ``store.rpc`` span
        (kind, attempts, bytes on the wire) and reported to
        :attr:`on_rpc` whether it succeeds or fails.

        Raises:
            StoreUnavailable: the server cannot be reached or answered
                unusably.
        """
        started = trace_clock()
        sent_bytes = 0
        with TRACER.span("store.rpc", "netstore", kind=kind) as span:
            try:
                with self._lock:
                    for attempt in range(2):
                        sock = self._ensure_connected()
                        try:
                            frame = wire.encode_frame(kind, payload)
                            sent_bytes = len(frame)
                            sock.sendall(frame)
                            reply = wire.recv_frame(sock)
                            span.set(attempts=attempt + 1,
                                     sent_bytes=sent_bytes)
                            return reply
                        except (OSError,
                                wire.ServiceProtocolError) as exc:
                            self._drop()
                            if attempt:
                                self._down_until = (self._clock()
                                                    + self.cooldown_s)
                                raise StoreUnavailable(
                                    f"store server"
                                    f" {self.host}:{self.port}"
                                    f" failed mid-request: {exc}"
                                ) from exc
                    raise AssertionError("unreachable")
            finally:
                if self.on_rpc is not None:
                    self.on_rpc(kind, trace_clock() - started,
                                sent_bytes)

    # -- the ResultStore protocol (degrading) ---------------------------

    def load(self, key: str) -> VerificationResult | None:
        try:
            kind, payload = self._request(wire.GET, {"key": key})
        except StoreUnavailable:
            return None
        if kind != wire.ENTRY:
            return None
        entry = payload.get("entry")
        if not isinstance(entry, str):
            return None
        try:
            # Client-side validation: the server is not trusted.
            return decode_entry(key, entry)
        except StoreError:
            return None

    def save(self, key: str, result: VerificationResult) -> None:
        try:
            self._request(wire.PUT,
                          {"key": key, "entry": encode_entry(key, result)})
        except StoreUnavailable:
            return  # a dropped cache write never fails the run

    def keys(self) -> tuple[str, ...]:
        try:
            kind, payload = self._request(wire.LIST, {})
        except StoreUnavailable:
            return ()
        if kind != wire.KEYS:
            return ()
        keys = payload.get("keys")
        if not isinstance(keys, list):
            return ()
        return tuple(sorted(k for k in keys if isinstance(k, str)))

    def remove(self, key: str) -> bool:
        try:
            kind, payload = self._request(wire.REMOVE, {"key": key})
        except StoreUnavailable:
            return False
        return kind == wire.OK and bool(payload.get("removed"))

    def touch(self, key: str, *, now: float | None = None) -> None:
        """No-op: the server stamps last access on every ``get`` hit,
        so an extra round trip per hit would buy nothing. The wire
        ``touch`` frame exists for tools that want to stamp without
        fetching; see :meth:`touch_remote`."""
        return

    def touch_remote(self, key: str) -> None:
        """Explicitly stamp ``key``'s last access on the server."""
        try:
            self._request(wire.TOUCH, {"key": key})
        except StoreUnavailable:
            return

    def server_stats(self) -> dict[str, int]:
        """The server's request counters.

        Raises:
            StoreUnavailable: the server cannot be reached.
        """
        kind, payload = self._request(wire.GET_STATS, {})
        if kind != wire.STATS:
            raise StoreUnavailable(
                f"store server answered stats with {kind!r}"
            )
        return {k: int(v) for k, v in payload.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)}

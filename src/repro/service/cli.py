"""``python -m repro serve-store`` and ``python -m repro serve``.

Thin command handlers in the CLI's house style: parse, build the
service object, announce ``listening on HOST:PORT`` (the same line
``repro worker`` prints, so scripts learn OS-assigned ports the same
way), serve until interrupted, exit 0.
"""

from __future__ import annotations

import argparse

from repro.core.errors import VerificationError


def _parse_listen(text: str) -> tuple[str, int]:
    from repro.verify.distributed import parse_endpoint

    try:
        return parse_endpoint(text)
    except VerificationError as exc:
        raise SystemExit(
            f"--listen expects HOST:PORT (port 0 = OS-assigned): {exc}"
        ) from exc


def cmd_serve_store(args: argparse.Namespace) -> int:
    from repro.service.netstore import is_store_url
    from repro.service.server import StoreServer
    from repro.store import FileStore

    host, port = _parse_listen(args.listen)
    if args.store is not None and is_store_url(args.store):
        raise SystemExit(
            "serve-store fronts a directory, not another server:"
            f" --store {args.store} makes no sense"
        )
    store = FileStore(args.store or None)
    try:
        server = StoreServer(store, host, port, secret=args.auth)
    except OSError as exc:
        raise SystemExit(f"cannot bind {host}:{port}: {exc}") from exc
    bound_host, bound_port = server.address
    print(f"repro-store listening on {bound_host}:{bound_port}",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.http import VerificationService

    host, port = _parse_listen(args.listen)
    if args.trace is not None:
        from repro.obs.trace import TRACER

        TRACER.enable()
    store = None
    if not args.no_store:
        from repro.service.netstore import NetworkStore, is_store_url
        from repro.store import FileStore

        if args.store is not None and is_store_url(args.store):
            store = NetworkStore.from_url(args.store,
                                          secret=args.store_auth)
        else:
            store = FileStore(args.store or None)
    service = VerificationService(
        store,
        store_refresh=args.store_refresh,
        store_subsume=args.store_subsume,
        secret=args.auth,
    )

    async def serve() -> None:
        bound_host, bound_port = await service.start(host, port)
        print(f"repro-serve listening on {bound_host}:{bound_port}",
              flush=True)
        await service.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        raise SystemExit(f"cannot bind {host}:{port}: {exc}") from exc
    finally:
        if args.trace is not None:
            import sys

            from repro.obs.export import write_chrome_trace
            from repro.obs.trace import TRACER

            TRACER.disable()
            spans = TRACER.drain()
            write_chrome_trace(args.trace, spans)
            print(f"[trace] {len(spans)} spans -> {args.trace}",
                  file=sys.stderr)
    return 0


def add_service_parsers(sub: argparse._SubParsersAction) -> None:
    """Register ``serve-store`` and ``serve`` on the root parser."""
    serve_store = sub.add_parser(
        "serve-store",
        help="serve a result store to a fleet over tcp://"
             " (point engines at it with --store tcp://HOST:PORT)",
    )
    serve_store.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="endpoint to bind (port 0 = OS-assigned; announced as"
             " 'listening on HOST:PORT')",
    )
    serve_store.add_argument(
        "--store", metavar="DIR", default=None,
        help="store root to serve (default ~/.cache/repro/store)",
    )
    serve_store.add_argument(
        "--auth", metavar="SECRET", default=None,
        help="require clients to answer an HMAC challenge with this"
             " shared secret (the secret never crosses the wire)",
    )

    serve = sub.add_parser(
        "serve",
        help="HTTP verification front end: POST spec files, stream"
             " progress events, serve warm requests from the store",
    )
    serve.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="endpoint to bind (port 0 = OS-assigned)",
    )
    serve.add_argument(
        "--store", metavar="DIR_OR_URL", default=None,
        help="result store to consult: a directory (default"
             " ~/.cache/repro/store) or tcp://HOST:PORT of a"
             " serve-store instance",
    )
    serve.add_argument(
        "--no-store", action="store_true",
        help="run every request cold (no result store)",
    )
    serve.add_argument(
        "--store-refresh", action="store_true",
        help="skip store lookups but store fresh results",
    )
    serve.add_argument(
        "--store-subsume", action="store_true",
        help="let a stored proved entry whose scope subsumes a request"
             " answer it (verdict-preserving, not byte-preserving)",
    )
    serve.add_argument(
        "--store-auth", metavar="SECRET", default=None,
        help="shared secret for a tcp:// store",
    )
    serve.add_argument(
        "--auth", metavar="SECRET", default=None,
        help="require 'Authorization: Bearer SECRET' on every POST",
    )
    serve.add_argument(
        "--trace", metavar="FILE", default=None,
        help="trace request handling and spec execution for the"
             " service's lifetime; the Chrome trace-event JSON is"
             " written to FILE at shutdown",
    )


SERVICE_COMMANDS = {
    "serve-store": cmd_serve_store,
    "serve": cmd_serve,
}

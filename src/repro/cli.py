"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflow a scheduler developer would follow with the
paper's toolchain:

* ``list-policies`` — the built-in policy zoo;
* ``verify``        — run the full §4 proof pipeline on a policy;
* ``hunt``          — model-check only, printing any counterexample lasso;
* ``campaign``      — randomised fuzzing beyond exhaustive scopes;
* ``simulate``      — run a workload under a chosen balancer and report
  wasted-core metrics;
* ``dsl``           — compile a DSL policy file and emit Python proof
  results, C, or Scala;
* ``worker``        — serve verification shards to a remote coordinator
  (the other end of ``--workers``/``--distributed``).

``verify``, ``zoo``, ``hunt`` and ``campaign`` accept three engine
selectors: ``--jobs N`` (local process pool), ``--distributed N``
(spawn N localhost worker subprocesses and dispatch shards over TCP),
and ``--workers HOST:PORT,...`` (dispatch to already-running ``worker``
processes anywhere on the network). Verdicts are identical under all of
them — see :mod:`repro.verify.parallel` and
:mod:`repro.verify.distributed`.

The same four commands also accept ``--topology numa:NxM`` /
``mesh:SxM``: the scope is sized to the layout's core count, the
topology-aware policies (``numa_choice``, ``cache_choice``, and — for
``hunt`` — ``hierarchical``) become available, and the state-space
exploration is quotiented by the topology's automorphism group (see
:mod:`repro.verify.symmetry` and ``docs/symmetry.md``).

Every command exits 0 on success; ``verify`` exits 2 when the policy is
refuted (so shell scripts can gate on proofs), and ``dsl`` exits 2 on
compilation errors.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Callable, Iterator, Sequence

from repro.core.policy import Policy


def _policy_registry() -> dict[str, Callable[[argparse.Namespace], Policy]]:
    from repro.baselines import IdleOnlyRandomStealPolicy, RandomStealPolicy
    from repro.policies import (
        BalanceCountPolicy,
        GreedyHalvingPolicy,
        NaiveOverloadedPolicy,
        ProvableWeightedPolicy,
        WeightedBalancePolicy,
    )
    from repro.policies.naive import (
        GreedyReadyPolicy,
        InvertedFilterPolicy,
        OverStealingPolicy,
    )
    from repro.policies.numa_aware import (
        LeastMigrationsChoicePolicy,
        NumaAwareChoicePolicy,
    )

    return {
        "balance_count": lambda a: BalanceCountPolicy(margin=a.margin),
        "greedy_halving": lambda a: GreedyHalvingPolicy(margin=a.margin),
        "weighted": lambda a: WeightedBalancePolicy(),
        "provable_weighted": lambda a: ProvableWeightedPolicy(),
        "naive": lambda a: NaiveOverloadedPolicy(),
        "greedy_ready": lambda a: GreedyReadyPolicy(),
        "inverted": lambda a: InvertedFilterPolicy(),
        "over_stealing": lambda a: OverStealingPolicy(),
        "random_steal": lambda a: RandomStealPolicy(seed=a.seed),
        "idle_random_steal": lambda a: IdleOnlyRandomStealPolicy(
            seed=a.seed
        ),
        "numa_choice": lambda a: NumaAwareChoicePolicy(
            _require_topology(a, "numa_choice"), margin=a.margin
        ),
        "cache_choice": lambda a: LeastMigrationsChoicePolicy(
            _require_topology(a, "cache_choice"), margin=a.margin
        ),
    }


def _parse_topology(text: str):
    """Parse a ``--topology`` spec into a :class:`NumaTopology`.

    Accepted forms: ``flat`` (no topology), ``numa:NxM`` (N fully
    connected nodes of M cores), ``mesh:SxM`` (an SxS 2D mesh of M-core
    nodes).
    """
    from repro.topology import mesh_numa, symmetric_numa

    text = text.strip().lower()
    if text == "flat":
        return None
    kind, _, dims = text.partition(":")
    parts = dims.split("x")
    if kind in ("numa", "mesh") and len(parts) == 2 \
            and all(p.isdigit() and int(p) > 0 for p in parts):
        first, second = int(parts[0]), int(parts[1])
        if kind == "numa":
            return symmetric_numa(first, second)
        return mesh_numa(first, second)
    raise SystemExit(
        f"bad --topology {text!r}: expected flat, numa:NxM, or mesh:SxM"
    )


def _require_topology(args: argparse.Namespace, policy_name: str):
    """The parsed ``--topology``, mandatory for topology-aware policies."""
    topology = _resolve_topology(args)
    if topology is None:
        raise SystemExit(
            f"policy {policy_name!r} needs a machine layout: pass"
            " --topology numa:NxM (or mesh:SxM)"
        )
    return topology


def _resolve_topology(args: argparse.Namespace):
    """Parse (once) and cache the namespace's ``--topology`` value."""
    if not hasattr(args, "_topology_cache"):
        spec = getattr(args, "topology", None)
        args._topology_cache = (
            _parse_topology(spec) if spec is not None else None
        )
    return args._topology_cache


def _resolve_symmetry(args: argparse.Namespace):
    """The symmetry group the CLI flags select, or ``None``.

    ``--topology`` selects the topology's automorphism group (sound for
    its NUMA-aware choices); ``--symmetric`` alone selects the flat
    full-renaming group. Combining them is rejected: the flat group is
    unsound for topology-aware choices, so the topology must win — ask
    the user to drop one flag rather than silently overriding.
    """
    no_symmetry = getattr(args, "no_symmetry", False)
    if no_symmetry and getattr(args, "symmetric", False):
        raise SystemExit(
            "--no-symmetry conflicts with --symmetric; pick one"
        )
    topology = _resolve_topology(args)
    if topology is not None:
        if getattr(args, "symmetric", False):
            raise SystemExit(
                "--symmetric (flat group) conflicts with --topology;"
                " the topology's own symmetry group is already applied"
            )
        if no_symmetry:
            return None
        from repro.verify.symmetry import NumaSymmetryGroup

        return NumaSymmetryGroup(topology)
    return None


def _scope_cores(args: argparse.Namespace, default: int = 3) -> int:
    """Scope width: the topology's core count when one is given.

    ``--cores`` defaults to ``None`` on topology-aware commands so an
    *explicit* value can be distinguished and rejected alongside
    ``--topology`` — silently verifying a different width than the user
    asked for would be worse than an error.
    """
    topology = _resolve_topology(args)
    if topology is not None:
        if args.cores is not None:
            raise SystemExit(
                f"--cores {args.cores} conflicts with --topology"
                f" (which fixes the scope at {topology.n_cores} cores);"
                " drop one of the two"
            )
        return topology.n_cores
    return args.cores if args.cores is not None else default


def _add_policy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("policy", help="policy name (see list-policies)")
    parser.add_argument("--margin", type=int, default=2,
                        help="margin for balance_count/greedy_halving")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for randomised policies")


def _positive_int(text: str) -> int:
    """Argparse type for worker counts: an integer >= 1.

    Rejects ``0`` and negatives with a one-line argparse error (exit
    code 2) instead of whatever downstream traceback a nonsensical pool
    size would eventually produce.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value}); worker counts"
            " cannot be zero or negative"
        )
    return value


def _positive_float(text: str) -> float:
    """Argparse type for intervals: a float strictly greater than zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid float value: {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds (got {value})"
        )
    return value


def _add_topology_arg(parser: argparse.ArgumentParser,
                      help_text: str | None = None) -> None:
    parser.add_argument(
        "--topology", metavar="flat|numa:NxM|mesh:SxM", default=None,
        help=help_text or (
            "machine layout: enables the topology-aware policies"
            " (numa_choice, cache_choice, hierarchical), sizes the"
            " scope to its core count, and applies its symmetry group"
            " to the state-space exploration"
        ),
    )
    parser.add_argument(
        "--no-symmetry", action="store_true",
        help="explore the full state space even when --topology would"
             " quotient it (required for --choice-mode policy with"
             " topology-aware choices, whose tie-breaks make any"
             " quotient unsound)",
    )


def _add_jobs_arg(parser: argparse.ArgumentParser,
                  help_text: str | None = None) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help=help_text or (
            "worker processes for sharded verification (default 1 ="
            " serial); verdicts are identical at any value"
        ),
    )


def _add_distributed_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--distributed", type=_positive_int, metavar="N", default=None,
        help="spawn N localhost worker subprocesses and dispatch shards"
             " to them over TCP (the reference distributed deployment)",
    )
    group.add_argument(
        "--workers", metavar="HOST:PORT[,HOST:PORT...]", default=None,
        help="dispatch shards to these already-running workers (start"
             " each with: python -m repro worker --listen HOST:PORT)",
    )


@contextlib.contextmanager
def _open_coordinator(args: argparse.Namespace) -> Iterator[object | None]:
    """Yield a Coordinator per the CLI flags, or ``None`` for local runs.

    Owns the whole distributed lifecycle: subprocess spawn/teardown for
    ``--distributed``, connect/close for ``--workers``. Transport or
    handshake failures become clean ``SystemExit`` messages.
    """
    distributed = getattr(args, "distributed", None)
    workers = getattr(args, "workers", None)
    if distributed is None and workers is None:
        yield None
        return
    if getattr(args, "jobs", 1) > 1:
        raise SystemExit(
            "--jobs cannot be combined with --distributed/--workers:"
            " pick one engine"
        )
    from repro.core.errors import VerificationError
    from repro.verify.distributed import LocalWorkerPool, connect_workers

    try:
        if workers is not None:
            coordinator = connect_workers(workers.split(","))
            try:
                yield coordinator
            finally:
                coordinator.close()
        else:
            with LocalWorkerPool(distributed) as coordinator:
                yield coordinator
    except VerificationError as exc:
        raise SystemExit(f"distributed run failed: {exc}") from exc


def _make_policy(args: argparse.Namespace) -> Policy:
    registry = _policy_registry()
    if args.policy not in registry:
        raise SystemExit(
            f"unknown policy {args.policy!r}; try: {', '.join(registry)}"
        )
    return registry[args.policy](args)


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def cmd_list_policies(args: argparse.Namespace) -> int:
    for name in sorted(_policy_registry()):
        print(name)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import (
        StateScope,
        prove_work_conserving_distributed,
        prove_work_conserving_parallel,
    )

    if args.policy == "hierarchical":
        raise SystemExit(
            "the hierarchical balancer has no flat per-core round to"
            " sweep; model-check it with: hunt hierarchical --topology"
            " numa:NxM"
        )
    from repro.core.errors import VerificationError

    policy = _make_policy(args)
    topology = _resolve_topology(args)
    symmetry = _resolve_symmetry(args)
    scope = StateScope(n_cores=_scope_cores(args), max_load=args.max_load)
    try:
        with _open_coordinator(args) as coordinator:
            if coordinator is not None:
                cert = prove_work_conserving_distributed(
                    policy, scope, coordinator,
                    choice_mode=args.choice_mode,
                    symmetric=args.symmetric,
                    symmetry=symmetry, topology=topology,
                )
            else:
                cert = prove_work_conserving_parallel(
                    policy, scope,
                    jobs=args.jobs,
                    choice_mode=args.choice_mode,
                    symmetric=args.symmetric,
                    symmetry=symmetry, topology=topology,
                )
    except VerificationError as exc:
        # e.g. an unsound (group, choice_mode) combination — a clean
        # one-line refusal, not a traceback.
        raise SystemExit(str(exc)) from exc
    print(cert.render())
    return 0 if cert.proved else 2


def cmd_zoo(args: argparse.Namespace) -> int:
    from repro.verify import StateScope, default_zoo, verify_zoo
    from repro.verify.report import topology_zoo

    topology = _resolve_topology(args)
    policies = default_zoo() if topology is None else topology_zoo(topology)
    with _open_coordinator(args) as coordinator:
        report = verify_zoo(
            policies,
            StateScope(n_cores=_scope_cores(args), max_load=args.max_load),
            jobs=args.jobs,
            coordinator=coordinator,
            symmetry=_resolve_symmetry(args),
            topology=topology,
        )
    print(report.render())
    return 0


def cmd_hunt(args: argparse.Namespace) -> int:
    from repro.verify import (
        StateScope,
        analyze_distributed,
        analyze_parallel,
    )

    policy = None
    hierarchy = None
    symmetry = _resolve_symmetry(args)
    if args.policy == "hierarchical":
        from repro.verify.hierarchical import HierarchySpec

        topology = _require_topology(args, "hierarchical")
        hierarchy = HierarchySpec(topology=topology,
                                  group_margin=args.margin,
                                  intra_margin=args.margin)
        if not args.no_symmetry:
            symmetry = hierarchy.symmetry_group()
    else:
        policy = _make_policy(args)
    topology = _resolve_topology(args)
    scope = StateScope(n_cores=_scope_cores(args), max_load=args.max_load)
    with _open_coordinator(args) as coordinator:
        if coordinator is not None:
            analysis = analyze_distributed(
                policy, scope, coordinator, symmetric=args.symmetric,
                symmetry=symmetry, topology=topology, hierarchy=hierarchy,
            )
        else:
            analysis = analyze_parallel(
                policy, scope,
                jobs=args.jobs,
                symmetric=args.symmetric,
                symmetry=symmetry, topology=topology, hierarchy=hierarchy,
            )
    if analysis.violated:
        print(f"VIOLATION: {analysis.lasso.describe()}")
    else:
        print(
            "no violation; exact worst-case N ="
            f" {analysis.worst_case_rounds}"
            f" over {analysis.states_explored} states"
        )
    return 0


def cmd_refine(args: argparse.Namespace) -> int:
    from repro.verify import StateScope, check_refinement

    registry = _policy_registry()
    if args.policy not in registry:
        raise SystemExit(
            f"unknown policy {args.policy!r}; try: {', '.join(registry)}"
        )
    result = check_refinement(
        lambda: registry[args.policy](args),
        StateScope(n_cores=args.cores, max_load=args.max_load),
    )
    print(result)
    return 0 if result.ok else 2


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.verify.campaign import CampaignConfig
    from repro.verify.distributed import run_campaign_distributed
    from repro.verify.parallel import run_campaign_parallel

    topology = _resolve_topology(args)
    max_cores = args.max_cores if args.max_cores is not None else 12
    if topology is not None:
        # Topology-aware policies index node tables by core id, so
        # fuzzed machines must not outgrow the declared layout — and an
        # explicit larger request is a conflict, not a silent clamp.
        if args.max_cores is not None and args.max_cores > topology.n_cores:
            raise SystemExit(
                f"--max-cores {args.max_cores} conflicts with --topology"
                f" (which caps machines at {topology.n_cores} cores);"
                " drop one of the two"
            )
        max_cores = min(max_cores, topology.n_cores)
    config = CampaignConfig(
        n_machines=args.machines,
        max_cores=max_cores,
        max_load=args.max_load,
        rounds_per_machine=args.rounds,
        seed=args.seed,
    )
    with _open_coordinator(args) as coordinator:
        if coordinator is not None:
            report = run_campaign_distributed(
                lambda: _make_policy(args), config, coordinator
            )
        else:
            report = run_campaign_parallel(lambda: _make_policy(args),
                                           config, jobs=args.jobs)
    print(report.describe())
    for violation in report.violations[:10]:
        print(f"  {violation}")
    return 0 if report.clean else 2


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.baselines import (
        CfsLikeBalancer,
        GlobalQueueBalancer,
        NullBalancer,
    )
    from repro.core.balancer import LoadBalancer
    from repro.core.machine import Machine
    from repro.metrics import render_table
    from repro.policies import BalanceCountPolicy, HierarchicalBalancer
    from repro.sim.engine import Simulation
    from repro.topology import build_domain_tree, symmetric_numa
    from repro.workloads import (
        BarrierWorkload,
        OltpWorkload,
        StaticImbalanceWorkload,
        place_pack,
    )

    topology = symmetric_numa(args.nodes, args.cores // args.nodes)
    machine = Machine(topology=topology)

    if args.balancer == "verified":
        balancer = LoadBalancer(machine, BalanceCountPolicy(),
                                check_invariants=False)
    elif args.balancer == "cfs":
        balancer = CfsLikeBalancer(machine, build_domain_tree(topology))
    elif args.balancer == "null":
        balancer = NullBalancer(machine)
    elif args.balancer == "ideal":
        balancer = GlobalQueueBalancer(machine)
    elif args.balancer == "hierarchical":
        balancer = HierarchicalBalancer(
            machine, build_domain_tree(topology)
        )
    else:
        raise SystemExit(f"unknown balancer {args.balancer!r}")

    if args.workload == "barrier":
        workload = BarrierWorkload(
            n_threads=2 * args.cores, n_phases=6, phase_work=25,
            placement=place_pack, seed=args.seed,
        )
    elif args.workload == "oltp":
        workload = OltpWorkload(
            n_workers=args.cores + args.cores // 2,
            duration=args.ticks // 2, seed=args.seed,
        )
    elif args.workload == "static":
        loads = [0] * args.cores
        loads[0] = 2 * args.cores
        workload = StaticImbalanceWorkload(loads)
    else:
        raise SystemExit(f"unknown workload {args.workload!r}")

    sim = Simulation(machine, balancer, workload=workload)
    result = sim.run(max_ticks=args.ticks)
    rows = [[key, value] for key, value in result.metrics.summary().items()]
    print(f"{args.workload} under {args.balancer}"
          f" ({args.cores} cores, {args.nodes} nodes):")
    print(render_table(["metric", "value"], rows))
    return 0


def cmd_dsl(args: argparse.Namespace) -> int:
    from repro.core.errors import DslError
    from repro.dsl import compile_policy, emit_c, emit_scala, parse_policy
    from repro.verify import StateScope, prove_work_conserving

    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file) as handle:
            source = handle.read()

    try:
        decl = parse_policy(source)
        policy = compile_policy(source)
    except DslError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.emit == "c":
        print(emit_c(decl))
    elif args.emit == "scala":
        print(emit_scala(decl))
    else:  # verify
        cert = prove_work_conserving(
            policy, StateScope(n_cores=args.cores, max_load=args.max_load)
        )
        print(cert.render())
        return 0 if cert.proved else 2
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.core.errors import VerificationError
    from repro.verify.distributed import WorkerServer, parse_endpoint

    try:
        host, port = parse_endpoint(args.listen)
    except VerificationError as exc:
        raise SystemExit(
            f"--listen expects HOST:PORT (port 0 = OS-assigned): {exc}"
        ) from exc
    server = WorkerServer(host=host, port=port,
                          heartbeat_s=args.heartbeat)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


# ---------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Provably work-conserving multicore scheduling"
                    " (HotOS'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-policies", help="list built-in policies")

    verify = sub.add_parser("verify", help="run the full proof pipeline")
    _add_policy_args(verify)
    verify.add_argument("--cores", type=int, default=None,
                        help="scope width (default 3; set by --topology)")
    verify.add_argument("--max-load", type=int, default=3)
    verify.add_argument("--choice-mode", choices=("all", "policy"),
                        default="all")
    verify.add_argument("--symmetric", action="store_true")
    _add_topology_arg(verify)
    _add_jobs_arg(verify)
    _add_distributed_args(verify)

    zoo = sub.add_parser("zoo", help="verdict matrix over the policy zoo")
    zoo.add_argument("--cores", type=int, default=None,
                     help="scope width (default 3; set by --topology)")
    zoo.add_argument("--max-load", type=int, default=3)
    _add_topology_arg(zoo)
    _add_jobs_arg(zoo)
    _add_distributed_args(zoo)

    hunt = sub.add_parser("hunt", help="model-check work conservation")
    _add_policy_args(hunt)
    hunt.add_argument("--cores", type=int, default=None,
                      help="scope width (default 3; set by --topology)")
    hunt.add_argument("--max-load", type=int, default=2)
    hunt.add_argument("--symmetric", action="store_true")
    _add_topology_arg(hunt)
    _add_jobs_arg(hunt)
    _add_distributed_args(hunt)

    refine = sub.add_parser(
        "refine", help="cross-validate model vs implementation"
    )
    _add_policy_args(refine)
    refine.add_argument("--cores", type=int, default=3)
    refine.add_argument("--max-load", type=int, default=3)

    campaign = sub.add_parser("campaign", help="randomised fuzzing")
    _add_policy_args(campaign)
    campaign.add_argument("--machines", type=int, default=50)
    campaign.add_argument("--max-cores", type=int, default=None,
                          help="largest fuzzed machine (default 12;"
                               " capped by --topology)")
    campaign.add_argument("--max-load", type=int, default=8)
    campaign.add_argument("--rounds", type=int, default=30)
    _add_topology_arg(campaign, help_text=(
        "machine layout: enables the topology-aware policies"
        " (numa_choice, cache_choice) and caps fuzzed machines at the"
        " layout's core count; campaigns sample states randomly, so no"
        " symmetry quotient applies here"
    ))
    _add_jobs_arg(campaign, help_text=(
        "worker processes, one derived fuzzing seed each (default 1 ="
        " serial); coverage depends on the (seed, workers) pair but"
        " reproduces exactly for fixed values"
    ))
    _add_distributed_args(campaign)

    simulate = sub.add_parser("simulate", help="run a workload")
    simulate.add_argument("--workload",
                          choices=("barrier", "oltp", "static"),
                          default="barrier")
    simulate.add_argument("--balancer",
                          choices=("verified", "cfs", "null", "ideal",
                                   "hierarchical"),
                          default="verified")
    simulate.add_argument("--cores", type=int, default=8)
    simulate.add_argument("--nodes", type=int, default=2)
    simulate.add_argument("--ticks", type=int, default=5000)
    simulate.add_argument("--seed", type=int, default=0)

    dsl = sub.add_parser("dsl", help="compile a DSL policy file")
    dsl.add_argument("file", help="policy source path, or - for stdin")
    dsl.add_argument("--emit", choices=("verify", "c", "scala"),
                     default="verify")
    dsl.add_argument("--cores", type=int, default=3)
    dsl.add_argument("--max-load", type=int, default=3)

    worker = sub.add_parser(
        "worker",
        help="serve verification shards to a remote coordinator",
    )
    worker.add_argument(
        "--listen", metavar="HOST:PORT", default="127.0.0.1:0",
        help="address to listen on (port 0 = OS-assigned; the chosen"
             " port is announced on stdout)",
    )
    worker.add_argument(
        "--heartbeat", type=_positive_float, default=1.0,
        help="seconds between heartbeat frames while a task runs",
    )

    return parser


COMMANDS = {
    "list-policies": cmd_list_policies,
    "verify": cmd_verify,
    "zoo": cmd_zoo,
    "hunt": cmd_hunt,
    "refine": cmd_refine,
    "campaign": cmd_campaign,
    "simulate": cmd_simulate,
    "dsl": cmd_dsl,
    "worker": cmd_worker,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)

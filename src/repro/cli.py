"""Command-line interface: ``python -m repro <command>`` — a thin client
of :mod:`repro.api`.

Commands mirror the workflow a scheduler developer would follow with the
paper's toolchain:

* ``list-policies`` — the built-in policy zoo;
* ``verify``        — run the full §4 proof pipeline on a policy;
* ``hunt``          — model-check only, printing any counterexample lasso;
* ``campaign``      — randomised fuzzing beyond exhaustive scopes;
* ``run-spec``      — execute a declarative spec file (a whole campaign
  of runs as one reviewable JSON document, see ``examples/specs/``);
* ``store``         — inspect and maintain the content-addressed proof
  store behind ``--store`` (``ls``/``show``/``gc``/``verify-integrity``);
* ``simulate``      — run a workload under a chosen balancer and report
  wasted-core metrics;
* ``dsl``           — compile a DSL policy file and emit Python proof
  results, C, or Scala;
* ``worker``        — serve verification shards to a remote coordinator
  (the other end of ``--workers``/``--distributed``).

The four verification commands (``verify``/``zoo``/``hunt``/``campaign``)
are pure argparse → :class:`~repro.api.VerificationRequest` translation:
they build a request, hand it to a :class:`~repro.api.Session`, print
``result.render()`` and exit ``result.exit_code``. All verification
logic, engine selection, and validation live in :mod:`repro.api`; the
flags are just the request's field names. ``--jobs N`` selects the pool
engine, ``--distributed N`` / ``--workers HOST:PORT,...`` the
distributed engine, and ``--topology numa:NxM`` / ``mesh:SxM`` the
topology-aware policies plus the symmetry quotient — verdicts are
identical under every engine. ``--store [DIR]`` serves any request
proven before straight from the content-addressed proof store
(:mod:`repro.store`) with byte-identical output and zero exploration.

Every command exits 0 on success; ``verify``, ``campaign`` and
``run-spec`` exit 2 when a policy is refuted (so shell scripts can gate
on proofs), and ``dsl`` exits 2 on compilation errors.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Iterator, Sequence


def _positive_int(text: str) -> int:
    """Argparse type for worker counts: an integer >= 1.

    Rejects ``0`` and negatives with a one-line argparse error (exit
    code 2) instead of whatever downstream traceback a nonsensical pool
    size would eventually produce.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value}); worker counts"
            " cannot be zero or negative"
        )
    return value


def _positive_float(text: str) -> float:
    """Argparse type for intervals: a float strictly greater than zero."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid float value: {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds (got {value})"
        )
    return value


# ---------------------------------------------------------------------------
# shared flag groups (argparse parent parsers)
#
# Every verification subcommand shares the same policy/scope/topology/
# engine vocabulary; each group is declared once here and attached via
# ``parents=``, so a flag's type, default, and help text cannot drift
# between subcommands.
# ---------------------------------------------------------------------------


def _policy_parent() -> argparse.ArgumentParser:
    """``policy`` positional plus its construction parameters."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("policy", help="policy name (see list-policies)")
    parent.add_argument("--margin", type=int, default=2,
                        help="margin for balance_count/greedy_halving")
    parent.add_argument("--seed", type=int, default=0,
                        help="seed for randomised policies")
    return parent


def _scope_parent(max_load_default: int) -> argparse.ArgumentParser:
    """``--cores``/``--max-load`` (cores defaults via the topology)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--cores", type=int, default=None,
                        help="scope width (default 3; set by --topology)")
    parent.add_argument("--max-load", type=int, default=max_load_default)
    return parent


def _topology_parent(help_text: str | None = None) -> argparse.ArgumentParser:
    """``--topology``/``--no-symmetry``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--topology", metavar="flat|numa:NxM|mesh:SxM", default=None,
        help=help_text or (
            "machine layout: enables the topology-aware policies"
            " (numa_choice, cache_choice, hierarchical), sizes the"
            " scope to its core count, and applies its symmetry group"
            " to the state-space exploration"
        ),
    )
    parent.add_argument(
        "--no-symmetry", action="store_true",
        help="explore the full state space even when --topology would"
             " quotient it (required for --choice-mode policy with"
             " topology-aware choices, whose tie-breaks make any"
             " quotient unsound)",
    )
    return parent


def _store_parent() -> argparse.ArgumentParser:
    """The proof-store selectors: ``--store``/``--no-store``/
    ``--store-refresh``."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_mutually_exclusive_group()
    group.add_argument(
        "--store", nargs="?", metavar="DIR", const="", default=None,
        help="serve previously proven requests from the content-"
             "addressed result store at DIR (default"
             " ~/.cache/repro/store) or from a store server"
             " (tcp://HOST:PORT) and store fresh results; warm runs"
             " render byte-identically without exploring any states",
    )
    group.add_argument(
        "--no-store", action="store_true",
        help="force the result store off",
    )
    parent.add_argument(
        "--store-refresh", action="store_true",
        help="re-run and overwrite store entries even when present"
             " (implies --store)",
    )
    parent.add_argument(
        "--store-auth", metavar="SECRET", default=None,
        help="shared secret for a tcp:// store server",
    )
    parent.add_argument(
        "--store-subsume", action="store_true",
        help="let a stored proved entry whose scope subsumes this"
             " request answer it (verdict-preserving, not"
             " byte-preserving)",
    )
    return parent


def _trace_parent() -> argparse.ArgumentParser:
    """The tracing selectors: ``--trace``/``--trace-summary``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a span trace of the whole run (checker phases,"
             " closure levels, store lookups, worker dispatch) and"
             " write it as Chrome trace-event JSON, loadable in"
             " Perfetto or chrome://tracing; verdicts and stdout are"
             " byte-identical with or without tracing",
    )
    parent.add_argument(
        "--trace-summary", action="store_true",
        help="print a per-category span profile (count/total/mean/p95)"
             " to stderr after the run",
    )
    return parent


def _engine_parent(jobs_help: str | None = None) -> argparse.ArgumentParser:
    """The engine selectors: ``--jobs``/``--distributed``/``--workers``."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs", type=_positive_int, default=1,
        help=jobs_help or (
            "worker processes for sharded verification (default 1 ="
            " serial); verdicts are identical at any value"
        ),
    )
    group = parent.add_mutually_exclusive_group()
    group.add_argument(
        "--distributed", type=_positive_int, metavar="N", default=None,
        help="spawn N localhost worker subprocesses and dispatch shards"
             " to them over TCP (the reference distributed deployment)",
    )
    group.add_argument(
        "--workers", metavar="HOST:PORT[,HOST:PORT...]", default=None,
        help="dispatch shards to these already-running workers (start"
             " each with: python -m repro worker --listen HOST:PORT)",
    )
    parent.add_argument(
        "--engine-mode", choices=("level-sync", "async"),
        default="level-sync", dest="engine_mode",
        help="distributed exploration mode: level-sync (barriered BFS"
             " rounds, the default) or async (barrier-free hash-"
             "partitioned exploration with work stealing); verdicts and"
             " reports are byte-identical either way",
    )
    parent.add_argument(
        "--partitions", type=_positive_int, metavar="N", default=None,
        help="hash-partition count for --engine-mode async (default:"
             " 4 per worker)",
    )
    return parent


# ---------------------------------------------------------------------------
# argparse -> repro.api translation
# ---------------------------------------------------------------------------


def _engine_spec(args: argparse.Namespace):
    """Map the engine flags onto an :class:`~repro.api.EngineSpec`."""
    from repro.api import EngineSpec

    distributed = getattr(args, "distributed", None)
    workers = getattr(args, "workers", None)
    mode = getattr(args, "engine_mode", "level-sync")
    partitions = getattr(args, "partitions", None)
    if distributed is not None or workers is not None:
        if getattr(args, "jobs", 1) > 1:
            raise SystemExit(
                "--jobs cannot be combined with --distributed/--workers:"
                " pick one engine"
            )
        if workers is not None:
            return EngineSpec(kind="distributed",
                              endpoints=tuple(workers.split(",")),
                              mode=mode, partitions=partitions)
        return EngineSpec(kind="distributed", workers=distributed,
                          mode=mode, partitions=partitions)
    if mode != "level-sync" or partitions is not None:
        raise SystemExit(
            "--engine-mode/--partitions only apply to the distributed"
            " engine: add --distributed N or --workers HOST:PORT"
        )
    jobs = getattr(args, "jobs", 1)
    if jobs > 1:
        return EngineSpec(kind="pool", jobs=jobs)
    return EngineSpec()


def _build_request(kind: str, args: argparse.Namespace):
    """Translate a verification subcommand's namespace into a request.

    Pure translation: every validation rule (flag conflicts, unknown
    policies, topology requirements) lives in the request itself, whose
    :class:`~repro.api.RequestError` messages are phrased in terms of
    these flags.
    """
    from repro.api import VerificationRequest

    builder = VerificationRequest.builder(kind)
    if kind != "zoo":
        builder.policy(args.policy, margin=args.margin, seed=args.seed)
    if kind == "campaign":
        builder.campaign(machines=args.machines, max_cores=args.max_cores,
                         rounds=args.rounds, seed=args.seed)
        builder.scope(max_load=args.max_load)
    else:
        builder.scope(cores=args.cores, max_load=args.max_load)
    builder.topology(getattr(args, "topology", None))
    builder.no_symmetry(getattr(args, "no_symmetry", False))
    builder.symmetric(getattr(args, "symmetric", False))
    builder.choice_mode(getattr(args, "choice_mode", "all"))
    builder.engine(_engine_spec(args))
    return builder.build()


def _store_config(args: argparse.Namespace):
    """Map the store flags onto ``(ResultStore | None, refresh)``."""
    directory = getattr(args, "store", None)
    refresh = getattr(args, "store_refresh", False)
    if getattr(args, "no_store", False):
        if refresh:
            raise SystemExit(
                "--no-store conflicts with --store-refresh: pick one"
            )
        return None, False
    if directory is None and not refresh:
        return None, False
    if directory:
        from repro.service.netstore import is_store_url

        if is_store_url(directory):
            from repro.service.netstore import NetworkStore

            return NetworkStore.from_url(
                directory, secret=getattr(args, "store_auth", None),
            ), refresh
    from repro.store import FileStore

    return FileStore(directory or None), refresh


def _make_session(args: argparse.Namespace):
    """The configured :class:`~repro.api.Session` for a verification
    command: the result store, when asked (``--progress`` consumes the
    session's streaming surface instead of subscribing)."""
    from repro.api import Session

    store, refresh = _store_config(args)
    return Session(store=store, store_refresh=refresh,
                   store_subsume=getattr(args, "store_subsume", False))


class _ProgressPrinter:
    """Formats ``--progress`` stderr lines with a timing prefix.

    Each line leads with the wall time elapsed since the printer was
    built and a cumulative states-per-second rate, both measured on the
    tracer's monotonic clock so ``--progress`` and ``--trace`` agree on
    every timestamp. The rate column shows ``-`` until an event has
    carried a state count. Pinned format (one test relies on it)::

        [progress +12.34s 5678/s] LevelCompleted(...)
    """

    def __init__(self, clock=None) -> None:
        from repro.obs.trace import trace_clock

        self._clock = clock if clock is not None else trace_clock
        self._start = self._clock()
        # StatesExplored carries a cumulative count, LevelCompleted a
        # per-level increment; track both and report whichever ran
        # ahead so no engine's event mix double-counts.
        self._explored = 0
        self._expanded = 0

    def format(self, event) -> str:
        states = getattr(event, "states", None)
        if states is not None:
            self._explored = max(self._explored, int(states))
        expanded = getattr(event, "states_expanded", None)
        if expanded is not None:
            self._expanded += int(expanded)
        total = max(self._explored, self._expanded)
        elapsed = self._clock() - self._start
        rate = f"{total / elapsed:.0f}" if total and elapsed > 0 else "-"
        return f"[progress +{elapsed:.2f}s {rate}/s] {event}"


def _session_run(session, request, args: argparse.Namespace):
    """Run one request; under ``--progress``, consume it as a stream.

    ``--progress`` is the first consumer of
    :meth:`~repro.api.Session.run_streaming`: each yielded event prints
    to stderr (same events, same order, prefixed with elapsed time and
    a states/s rate — stdout stays byte-identical to the legacy
    reports), and a failed run re-raises its error after the final
    ``RequestFailed`` event, which matches the subscriber path's
    emit-then-propagate contract.
    """
    if not getattr(args, "progress", False):
        return session.run(request)
    printer = _ProgressPrinter()
    stream = session.run_streaming(request)
    while True:
        try:
            event = next(stream)
        except StopIteration as stop:
            return stop.value
        print(printer.format(event), file=sys.stderr)


@contextlib.contextmanager
def _tracing(args: argparse.Namespace) -> Iterator[None]:
    """Enable the tracer for a command body when ``--trace`` or
    ``--trace-summary`` asked for it; export on the way out.

    Exports run in a ``finally`` so a refuted policy (exit 2) or an
    engine failure still leaves the trace file behind — that is
    exactly when a timeline is worth reading. Everything lands on
    stderr or the ``--trace`` file; stdout is untouched.
    """
    trace_path = getattr(args, "trace", None)
    want_summary = getattr(args, "trace_summary", False)
    if trace_path is None and not want_summary:
        yield
        return
    from repro.obs.trace import TRACER

    TRACER.enable()
    try:
        yield
    finally:
        TRACER.disable()
        spans = TRACER.drain()
        if trace_path is not None:
            from repro.obs.export import write_chrome_trace

            write_chrome_trace(trace_path, spans)
            print(f"[trace] {len(spans)} spans -> {trace_path}",
                  file=sys.stderr)
        if want_summary:
            from repro.obs.export import summarize

            print(summarize(spans).render(), file=sys.stderr)


def _run_request(kind: str, args: argparse.Namespace,
                 clean_refusals: bool = False) -> int:
    """Build, run, print, exit — the whole thin client.

    ``clean_refusals`` additionally turns any
    :class:`~repro.core.errors.VerificationError` (e.g. an unsound
    (group, choice_mode) combination) into a one-line ``SystemExit``
    instead of a traceback — ``verify``'s historical behaviour.
    """
    from repro.api import EngineError, RequestError
    from repro.core.errors import VerificationError

    try:
        request = _build_request(kind, args)
    except RequestError as exc:
        raise SystemExit(str(exc)) from exc
    session = _make_session(args)
    try:
        with _tracing(args):
            result = _session_run(session, request, args)
    except EngineError as exc:
        # Transport/spawn/dispatch failures: a clean one-liner, for
        # every verification command.
        raise SystemExit(str(exc)) from exc
    except VerificationError as exc:
        if clean_refusals:
            raise SystemExit(str(exc)) from exc
        raise
    print(result.render())
    return result.exit_code


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def cmd_list_policies(args: argparse.Namespace) -> int:
    from repro.api import policy_names

    for name in sorted(policy_names()):
        print(name)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    return _run_request("prove", args, clean_refusals=True)


def cmd_zoo(args: argparse.Namespace) -> int:
    return _run_request("zoo", args)


def cmd_hunt(args: argparse.Namespace) -> int:
    return _run_request("hunt", args)


def cmd_campaign(args: argparse.Namespace) -> int:
    return _run_request("campaign", args)


def cmd_run_spec(args: argparse.Namespace) -> int:
    from repro.api import EngineError, SpecError, load_spec
    from repro.core.errors import VerificationError

    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        raise SystemExit(str(exc)) from exc
    if args.list:
        for run in spec.runs:
            print(f"{run.name}: {run.request.describe()}")
        return 0
    session = _make_session(args)
    try:
        selected = ([spec.run_named(args.only)] if args.only is not None
                    else list(spec.runs))
    except SpecError as exc:  # unknown --only name
        raise SystemExit(str(exc)) from exc
    # Results print as each run completes (a failure in run N cannot
    # discard runs 1..N-1's reports) and are collected for --json.
    outcomes = []
    failure: SystemExit | None = None
    multiple = len(selected) > 1
    with _tracing(args):
        for index, run in enumerate(selected):
            if multiple:
                # Headers only between runs, so a single-run execution
                # (or --only) stays byte-identical to the legacy
                # command it replaces — CI diffs exactly that.
                if index:
                    print()
                print(f"# {run.name}")
            try:
                result = _session_run(session, run.request, args)
            except (EngineError, VerificationError) as exc:
                # The same clean one-liner `verify` prints for refusals
                # and transport failures — but only after flushing what
                # ran.
                failure = SystemExit(f"run {run.name!r} failed: {exc}")
                break
            outcomes.append((run, result))
            print(result.render())
    if args.json is not None and outcomes:
        import json

        from repro.api import result_to_dict
        from repro.store import store_key

        # Every entry names its content address (and, inside the
        # result, full provenance when a store ran) so downstream
        # tooling can correlate documents with store entries without
        # re-deriving keys.
        with open(args.json, "w") as handle:
            json.dump(
                [
                    {"run": run.name,
                     "store_key": store_key(run.request),
                     "result": result_to_dict(result)}
                    for run, result in outcomes
                ],
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
    if failure is not None:
        raise failure
    return max(result.exit_code for _, result in outcomes)


def cmd_refine(args: argparse.Namespace) -> int:
    from repro.api import PolicySpec, RequestError, build_policy, policy_names
    from repro.verify import StateScope, check_refinement

    if args.policy not in policy_names():
        raise SystemExit(
            f"unknown policy {args.policy!r};"
            f" try: {', '.join(policy_names())}"
        )
    spec = PolicySpec(name=args.policy, margin=args.margin, seed=args.seed)
    try:
        result = check_refinement(
            lambda: build_policy(spec),
            StateScope(n_cores=args.cores, max_load=args.max_load),
        )
    except RequestError as exc:
        raise SystemExit(str(exc)) from exc
    print(result)
    return 0 if result.ok else 2


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.baselines import (
        CfsLikeBalancer,
        GlobalQueueBalancer,
        NullBalancer,
    )
    from repro.core.balancer import LoadBalancer
    from repro.core.machine import Machine
    from repro.metrics import render_table
    from repro.policies import BalanceCountPolicy, HierarchicalBalancer
    from repro.sim.engine import Simulation
    from repro.topology import build_domain_tree, symmetric_numa
    from repro.workloads import (
        BarrierWorkload,
        OltpWorkload,
        StaticImbalanceWorkload,
        place_pack,
    )

    topology = symmetric_numa(args.nodes, args.cores // args.nodes)
    machine = Machine(topology=topology)

    if args.balancer == "verified":
        balancer = LoadBalancer(machine, BalanceCountPolicy(),
                                check_invariants=False)
    elif args.balancer == "cfs":
        balancer = CfsLikeBalancer(machine, build_domain_tree(topology))
    elif args.balancer == "null":
        balancer = NullBalancer(machine)
    elif args.balancer == "ideal":
        balancer = GlobalQueueBalancer(machine)
    elif args.balancer == "hierarchical":
        balancer = HierarchicalBalancer(
            machine, build_domain_tree(topology)
        )
    else:
        raise SystemExit(f"unknown balancer {args.balancer!r}")

    if args.workload == "barrier":
        workload = BarrierWorkload(
            n_threads=2 * args.cores, n_phases=6, phase_work=25,
            placement=place_pack, seed=args.seed,
        )
    elif args.workload == "oltp":
        workload = OltpWorkload(
            n_workers=args.cores + args.cores // 2,
            duration=args.ticks // 2, seed=args.seed,
        )
    elif args.workload == "static":
        loads = [0] * args.cores
        loads[0] = 2 * args.cores
        workload = StaticImbalanceWorkload(loads)
    else:
        raise SystemExit(f"unknown workload {args.workload!r}")

    sim = Simulation(machine, balancer, workload=workload)
    result = sim.run(max_ticks=args.ticks)
    rows = [[key, value] for key, value in result.metrics.summary().items()]
    print(f"{args.workload} under {args.balancer}"
          f" ({args.cores} cores, {args.nodes} nodes):")
    print(render_table(["metric", "value"], rows))
    return 0


def cmd_dsl(args: argparse.Namespace) -> int:
    from repro.core.errors import DslError
    from repro.dsl import compile_policy, emit_c, emit_scala, parse_policy
    from repro.verify import StateScope, prove_work_conserving

    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file) as handle:
            source = handle.read()

    try:
        decl = parse_policy(source)
        policy = compile_policy(source)
    except DslError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.emit == "c":
        print(emit_c(decl))
    elif args.emit == "scala":
        print(emit_scala(decl))
    else:  # verify
        cert = prove_work_conserving(
            policy, StateScope(n_cores=args.cores, max_load=args.max_load)
        )
        print(cert.render())
        return 0 if cert.proved else 2
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    from repro.core.errors import VerificationError
    from repro.store.cli import cmd_store as run_store_command

    try:
        return run_store_command(args)
    except VerificationError as exc:
        # Unwritable or corrupt store roots: the same clean one-liner
        # every verification command prints, never a traceback.
        raise SystemExit(str(exc)) from exc


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.core.errors import VerificationError
    from repro.verify.distributed import WorkerServer, parse_endpoint

    try:
        host, port = parse_endpoint(args.listen)
    except VerificationError as exc:
        raise SystemExit(
            f"--listen expects HOST:PORT (port 0 = OS-assigned): {exc}"
        ) from exc
    server = WorkerServer(host=host, port=port,
                          heartbeat_s=args.heartbeat)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


# ---------------------------------------------------------------------------
# argument parsing
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Provably work-conserving multicore scheduling"
                    " (HotOS'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-policies", help="list built-in policies")

    progress_parent = argparse.ArgumentParser(add_help=False)
    progress_parent.add_argument(
        "--progress", action="store_true",
        help="stream structured progress events (levels completed, shard"
             " reassignments, violations) to stderr",
    )

    verify = sub.add_parser(
        "verify", help="run the full proof pipeline",
        parents=[_policy_parent(), _scope_parent(3), _topology_parent(),
                 _engine_parent(), _store_parent(), progress_parent,
                 _trace_parent()],
    )
    verify.add_argument("--choice-mode", choices=("all", "policy"),
                        default="all")
    verify.add_argument("--symmetric", action="store_true")

    sub.add_parser(
        "zoo", help="verdict matrix over the policy zoo",
        parents=[_scope_parent(3), _topology_parent(), _engine_parent(),
                 _store_parent(), progress_parent, _trace_parent()],
    )

    hunt = sub.add_parser(
        "hunt", help="model-check work conservation",
        parents=[_policy_parent(), _scope_parent(2), _topology_parent(),
                 _engine_parent(), _store_parent(), progress_parent,
                 _trace_parent()],
    )
    hunt.add_argument("--symmetric", action="store_true")

    refine = sub.add_parser(
        "refine", help="cross-validate model vs implementation",
        parents=[_policy_parent()],
    )
    refine.add_argument("--cores", type=int, default=3)
    refine.add_argument("--max-load", type=int, default=3)

    campaign = sub.add_parser(
        "campaign", help="randomised fuzzing",
        parents=[
            _policy_parent(),
            _topology_parent(help_text=(
                "machine layout: enables the topology-aware policies"
                " (numa_choice, cache_choice) and caps fuzzed machines at"
                " the layout's core count; campaigns sample states"
                " randomly, so no symmetry quotient applies here"
            )),
            _engine_parent(jobs_help=(
                "worker processes, one derived fuzzing seed each (default"
                " 1 = serial); coverage depends on the (seed, workers)"
                " pair but reproduces exactly for fixed values"
            )),
            _store_parent(),
            progress_parent,
            _trace_parent(),
        ],
    )
    campaign.add_argument("--machines", type=int, default=50)
    campaign.add_argument("--max-cores", type=int, default=None,
                          help="largest fuzzed machine (default 12;"
                               " capped by --topology)")
    campaign.add_argument("--max-load", type=int, default=8)
    campaign.add_argument("--rounds", type=int, default=30)

    run_spec = sub.add_parser(
        "run-spec",
        help="execute a declarative verification spec file",
        parents=[_store_parent(), progress_parent, _trace_parent()],
    )
    run_spec.add_argument("spec", help="path to a spec JSON document"
                                       " (see examples/specs/)")
    run_spec.add_argument("--only", metavar="NAME", default=None,
                          help="execute just this named run (output is"
                               " then byte-identical to the equivalent"
                               " legacy command)")
    run_spec.add_argument("--list", action="store_true",
                          help="list the spec's runs without executing")
    run_spec.add_argument("--json", metavar="PATH", default=None,
                          help="also write every result as lossless JSON"
                               " to this file")

    simulate = sub.add_parser("simulate", help="run a workload")
    simulate.add_argument("--workload",
                          choices=("barrier", "oltp", "static"),
                          default="barrier")
    simulate.add_argument("--balancer",
                          choices=("verified", "cfs", "null", "ideal",
                                   "hierarchical"),
                          default="verified")
    simulate.add_argument("--cores", type=int, default=8)
    simulate.add_argument("--nodes", type=int, default=2)
    simulate.add_argument("--ticks", type=int, default=5000)
    simulate.add_argument("--seed", type=int, default=0)

    dsl = sub.add_parser("dsl", help="compile a DSL policy file")
    dsl.add_argument("file", help="policy source path, or - for stdin")
    dsl.add_argument("--emit", choices=("verify", "c", "scala"),
                     default="verify")
    dsl.add_argument("--cores", type=int, default=3)
    dsl.add_argument("--max-load", type=int, default=3)

    from repro.store.cli import add_store_parser

    add_store_parser(sub)

    worker = sub.add_parser(
        "worker",
        help="serve verification shards to a remote coordinator",
    )
    worker.add_argument(
        "--listen", metavar="HOST:PORT", default="127.0.0.1:0",
        help="address to listen on (port 0 = OS-assigned; the chosen"
             " port is announced on stdout)",
    )
    worker.add_argument(
        "--heartbeat", type=_positive_float, default=1.0,
        help="seconds between heartbeat frames while a task runs",
    )

    from repro.service.cli import add_service_parsers

    add_service_parsers(sub)

    return parser


COMMANDS = {
    "list-policies": cmd_list_policies,
    "verify": cmd_verify,
    "zoo": cmd_zoo,
    "hunt": cmd_hunt,
    "refine": cmd_refine,
    "campaign": cmd_campaign,
    "run-spec": cmd_run_spec,
    "simulate": cmd_simulate,
    "dsl": cmd_dsl,
    "store": cmd_store,
    "worker": cmd_worker,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command in COMMANDS:
        return COMMANDS[args.command](args)
    # The service commands (serve-store, serve) live in their own
    # package and register lazily, keeping `--help` startup light.
    from repro.service.cli import SERVICE_COMMANDS

    return SERVICE_COMMANDS[args.command](args)

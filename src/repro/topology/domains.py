"""Hierarchical scheduling domains.

Section 5 of the paper names hierarchical load balancing — "balancing load
between groups of cores, and then inside groups, instead of balancing load
directly between individual cores" — as the main extension target of the
abstractions. Linux organises this exactly the same way with its
``sched_domain`` tree: SMT siblings inside a core, cores inside an LLC,
LLCs inside a NUMA node, nodes inside the machine.

This module builds such a tree from a :class:`~repro.topology.numa.NumaTopology`.
The hierarchical policy (:mod:`repro.policies.hierarchical`) walks the
tree bottom-up, applying the same three-step filter/choice/steal round at
every level, with "core" generalised to "group of cores". The proof
obligations are per-level and identical in shape — which is precisely why
the paper expects the extension to be cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.errors import ConfigurationError
from repro.topology.numa import NumaTopology


@dataclass
class SchedDomain:
    """One node of the scheduling-domain tree.

    Attributes:
        name: human-readable label, e.g. ``"node1"`` or ``"machine"``.
        level: 0 for leaves' parents upwards; leaves are individual cores
            represented implicitly by ``cores`` tuples of size 1.
        cores: all core ids covered by this domain, ascending.
        children: sub-domains partitioning ``cores``.
    """

    name: str
    level: int
    cores: tuple[int, ...]
    children: list["SchedDomain"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.cores:
            raise ConfigurationError(f"domain {self.name} covers no cores")
        if self.children:
            covered = sorted(
                cid for child in self.children for cid in child.cores
            )
            if covered != sorted(self.cores):
                raise ConfigurationError(
                    f"children of domain {self.name} do not partition it"
                )

    @property
    def is_leaf_group(self) -> bool:
        """Whether this domain's children are individual cores (no subtree)."""
        return not self.children

    def walk(self) -> Iterator["SchedDomain"]:
        """Yield this domain and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def levels(self) -> dict[int, list["SchedDomain"]]:
        """Group all domains in the subtree by their level."""
        by_level: dict[int, list[SchedDomain]] = {}
        for dom in self.walk():
            by_level.setdefault(dom.level, []).append(dom)
        return by_level

    def find_leaf_group(self, core: int) -> "SchedDomain":
        """Return the deepest domain containing ``core``."""
        if core not in self.cores:
            raise ConfigurationError(
                f"core {core} not in domain {self.name}"
            )
        for child in self.children:
            if core in child.cores:
                return child.find_leaf_group(core)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchedDomain({self.name}, level={self.level}, cores={self.cores})"


def build_domain_tree(topology: NumaTopology,
                      group_size: int | None = None) -> SchedDomain:
    """Build a two- or three-level domain tree from a NUMA topology.

    The root covers the machine; its children are NUMA nodes; when
    ``group_size`` is given and smaller than a node, each node is further
    split into groups of that many cores (modelling shared LLC slices).

    Args:
        topology: the machine's NUMA layout.
        group_size: optional intra-node group size; must divide the node
            size when provided.

    Returns:
        The root :class:`SchedDomain`.
    """
    node_domains: list[SchedDomain] = []
    for node in range(topology.n_nodes):
        cores = topology.cores_of(node)
        children: list[SchedDomain] = []
        if group_size is not None and group_size < len(cores):
            if len(cores) % group_size != 0:
                raise ConfigurationError(
                    f"group_size {group_size} does not divide node size"
                    f" {len(cores)}"
                )
            for start in range(0, len(cores), group_size):
                chunk = cores[start:start + group_size]
                children.append(
                    SchedDomain(
                        name=f"node{node}.group{start // group_size}",
                        level=0,
                        cores=chunk,
                    )
                )
        node_domains.append(
            SchedDomain(
                name=f"node{node}",
                level=1 if children else 0,
                cores=cores,
                children=children,
            )
        )
    root_level = 1 + max(dom.level for dom in node_domains)
    return SchedDomain(
        name="machine",
        level=root_level,
        cores=tuple(range(topology.n_cores)),
        children=node_domains,
    )


def flat_groups(root: SchedDomain) -> list[tuple[int, ...]]:
    """Return the core groups at the deepest level of the tree.

    These are the units the hierarchical balancer treats as "cores" at
    its innermost level.
    """
    leaves: list[tuple[int, ...]] = []

    def visit(dom: SchedDomain) -> None:
        if dom.is_leaf_group:
            leaves.append(dom.cores)
            return
        for child in dom.children:
            visit(child)

    visit(root)
    return leaves

"""Cache-locality cost model.

The paper's step-2 ("choice") heuristics include "giving priority to some
core to improve cache locality" (Section 3.1). To make those heuristics
exercise something real, the simulator charges a migration penalty when a
task resumes on a core that does not share cache with the core it last ran
on. The penalty model is deliberately simple — a fixed warm-up cost per
locality tier — because the paper's claim is about *proof structure*
(locality heuristics cost nothing in proof effort), not about cache
microarchitecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.core.errors import ConfigurationError
from repro.topology.numa import NumaTopology


class LocalityTier(IntEnum):
    """How close two cores are, from the point of view of a migrating task."""

    SAME_CORE = 0     #: no migration at all
    SHARED_LLC = 1    #: same last-level cache (same group)
    SAME_NODE = 2     #: same NUMA node, different LLC group
    REMOTE_NODE = 3   #: different NUMA node


@dataclass(frozen=True)
class CacheModel:
    """Warm-up penalties (in simulator time units) per locality tier.

    Attributes:
        topology: the machine layout used to classify migrations.
        llc_group_size: number of consecutive cores sharing an LLC; when
            0, the whole NUMA node is treated as one LLC domain.
        shared_llc_penalty: warm-up cost after migrating within an LLC.
        same_node_penalty: warm-up cost after migrating across LLCs on
            one node.
        remote_node_penalty: warm-up cost after migrating across nodes.
    """

    topology: NumaTopology
    llc_group_size: int = 0
    shared_llc_penalty: int = 0
    same_node_penalty: int = 1
    remote_node_penalty: int = 4

    def __post_init__(self) -> None:
        if self.llc_group_size < 0:
            raise ConfigurationError(
                f"llc_group_size must be >= 0, got {self.llc_group_size}"
            )
        penalties = (
            self.shared_llc_penalty,
            self.same_node_penalty,
            self.remote_node_penalty,
        )
        if any(p < 0 for p in penalties):
            raise ConfigurationError("penalties must be >= 0")

    def llc_group(self, core: int) -> int:
        """Identifier of the LLC group of ``core``."""
        if self.llc_group_size == 0:
            return self.topology.node_of(core)
        return core // self.llc_group_size

    def tier(self, src_core: int | None, dst_core: int) -> LocalityTier:
        """Classify a migration from ``src_core`` to ``dst_core``.

        ``src_core`` may be ``None`` for a task that has never run; such
        placements are free (nothing to lose).
        """
        if src_core is None or src_core == dst_core:
            return LocalityTier.SAME_CORE
        if not self.topology.same_node(src_core, dst_core):
            return LocalityTier.REMOTE_NODE
        if self.llc_group(src_core) == self.llc_group(dst_core):
            return LocalityTier.SHARED_LLC
        return LocalityTier.SAME_NODE

    def penalty(self, src_core: int | None, dst_core: int) -> int:
        """Warm-up cost charged when a task resumes on ``dst_core``."""
        tier = self.tier(src_core, dst_core)
        if tier is LocalityTier.SAME_CORE:
            return 0
        if tier is LocalityTier.SHARED_LLC:
            return self.shared_llc_penalty
        if tier is LocalityTier.SAME_NODE:
            return self.same_node_penalty
        return self.remote_node_penalty


def no_cache_model(topology: NumaTopology) -> CacheModel:
    """A cost model where every migration is free (pure balancing studies)."""
    return CacheModel(
        topology=topology,
        shared_llc_penalty=0,
        same_node_penalty=0,
        remote_node_penalty=0,
    )

"""NUMA machine topology.

The paper targets "schedulers that could be used in practice, which
implies that the scheduler should ... implement the complex scheduling
heuristics used on modern hardware such as NUMA-aware thread placement"
(Section 1). This module models the hardware side of that requirement:
which cores share a NUMA node and what the relative access distances
between nodes are.

Distances follow the ACPI SLIT convention used by Linux: local access is
10, and remote access costs are expressed relative to it (20 means "2x
local latency"). The NUMA-aware *choice* functions in
:mod:`repro.policies.numa_aware` consume these distances; the proofs never
look at them — which is the paper's point about keeping heuristics inside
step 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

#: Local-node distance in the ACPI SLIT convention.
LOCAL_DISTANCE = 10
#: Conventional distance of a one-hop remote node.
REMOTE_DISTANCE = 20


@dataclass(frozen=True)
class NumaTopology:
    """Placement of cores onto NUMA nodes plus inter-node distances.

    Attributes:
        n_cores: total number of cores.
        n_nodes: number of NUMA nodes; must divide ``n_cores`` when the
            default round-robin placement is used.
        core_to_node: tuple mapping core id -> node id.
        distances: square matrix (tuple of tuples) of node distances in
            SLIT units; ``distances[i][j]`` is the cost for node ``i`` to
            access node ``j``.
    """

    n_cores: int
    n_nodes: int
    core_to_node: tuple[int, ...]
    distances: tuple[tuple[int, ...], ...]
    name: str = field(default="numa", compare=False)

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigurationError(f"n_cores must be > 0, got {self.n_cores}")
        if self.n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be > 0, got {self.n_nodes}")
        if len(self.core_to_node) != self.n_cores:
            raise ConfigurationError(
                f"core_to_node has {len(self.core_to_node)} entries"
                f" for {self.n_cores} cores"
            )
        if any(not 0 <= node < self.n_nodes for node in self.core_to_node):
            raise ConfigurationError("core_to_node references unknown node")
        if len(self.distances) != self.n_nodes or any(
            len(row) != self.n_nodes for row in self.distances
        ):
            raise ConfigurationError(
                f"distances must be a {self.n_nodes}x{self.n_nodes} matrix"
            )
        for i in range(self.n_nodes):
            if self.distances[i][i] != LOCAL_DISTANCE:
                raise ConfigurationError(
                    f"distances[{i}][{i}] must be {LOCAL_DISTANCE} (local)"
                )
            for j in range(self.n_nodes):
                if self.distances[i][j] < LOCAL_DISTANCE:
                    raise ConfigurationError(
                        "remote distance cannot be below local distance"
                    )

    def node_of(self, core: int) -> int:
        """Return the NUMA node of ``core``."""
        return self.core_to_node[core]

    def cores_of(self, node: int) -> tuple[int, ...]:
        """Return the core ids on ``node`` in ascending order."""
        if not 0 <= node < self.n_nodes:
            raise ConfigurationError(f"unknown node {node}")
        return tuple(
            cid for cid, n in enumerate(self.core_to_node) if n == node
        )

    def distance(self, core_a: int, core_b: int) -> int:
        """SLIT distance between the nodes of two cores."""
        return self.distances[self.node_of(core_a)][self.node_of(core_b)]

    def same_node(self, core_a: int, core_b: int) -> bool:
        """Whether two cores share a NUMA node."""
        return self.node_of(core_a) == self.node_of(core_b)

    @property
    def cores_per_node(self) -> int:
        """Cores on node 0 (all nodes are equal for generated topologies)."""
        return len(self.cores_of(0))


def uniform_topology(n_cores: int) -> NumaTopology:
    """A single-node (UMA) machine: every core is local to every other."""
    return NumaTopology(
        n_cores=n_cores,
        n_nodes=1,
        core_to_node=tuple(0 for _ in range(n_cores)),
        distances=((LOCAL_DISTANCE,),),
        name=f"uma-{n_cores}",
    )


def symmetric_numa(n_nodes: int, cores_per_node: int,
                   remote_distance: int = REMOTE_DISTANCE) -> NumaTopology:
    """A fully connected NUMA machine with one uniform remote distance.

    Models small SMP boxes (2-8 sockets) where every socket is one hop
    from every other, e.g. a 4-node Opteron or a 2-socket Xeon.

    Args:
        n_nodes: number of NUMA nodes (sockets).
        cores_per_node: cores on each node; cores are numbered node-major
            (cores ``[0, cores_per_node)`` on node 0, and so on).
        remote_distance: SLIT distance between distinct nodes.
    """
    if remote_distance < LOCAL_DISTANCE:
        raise ConfigurationError(
            f"remote_distance must be >= {LOCAL_DISTANCE}, got {remote_distance}"
        )
    n_cores = n_nodes * cores_per_node
    core_to_node = tuple(cid // cores_per_node for cid in range(n_cores))
    distances = tuple(
        tuple(
            LOCAL_DISTANCE if i == j else remote_distance
            for j in range(n_nodes)
        )
        for i in range(n_nodes)
    )
    return NumaTopology(
        n_cores=n_cores,
        n_nodes=n_nodes,
        core_to_node=core_to_node,
        distances=distances,
        name=f"numa-{n_nodes}x{cores_per_node}",
    )


def mesh_numa(side: int, cores_per_node: int,
              hop_cost: int = 5) -> NumaTopology:
    """A 2D-mesh NUMA machine where distance grows with Manhattan hops.

    Models larger directory-based machines (e.g. 8-node AMD platforms)
    where some node pairs are two hops apart. Node ``(r, c)`` has id
    ``r * side + c``; the distance between two nodes is
    ``LOCAL_DISTANCE + hop_cost * manhattan_hops``.

    Args:
        side: mesh side length; the machine has ``side * side`` nodes.
        cores_per_node: cores per node, numbered node-major.
        hop_cost: extra SLIT distance per Manhattan hop.
    """
    if side <= 0:
        raise ConfigurationError(f"side must be > 0, got {side}")
    n_nodes = side * side
    n_cores = n_nodes * cores_per_node

    def hops(a: int, b: int) -> int:
        ra, ca = divmod(a, side)
        rb, cb = divmod(b, side)
        return abs(ra - rb) + abs(ca - cb)

    distances = tuple(
        tuple(LOCAL_DISTANCE + hop_cost * hops(i, j) for j in range(n_nodes))
        for i in range(n_nodes)
    )
    core_to_node = tuple(cid // cores_per_node for cid in range(n_cores))
    return NumaTopology(
        n_cores=n_cores,
        n_nodes=n_nodes,
        core_to_node=core_to_node,
        distances=distances,
        name=f"mesh-{side}x{side}x{cores_per_node}",
    )

"""Machine topology: NUMA nodes, cache domains, scheduling-domain trees.

The topology package is the "modern hardware" substrate the paper's
Section 1 demands: NUMA-aware thread placement needs node distances, and
Section 5's hierarchical balancing needs a Linux-style domain tree.
"""

from repro.topology.cache import CacheModel, LocalityTier, no_cache_model
from repro.topology.domains import SchedDomain, build_domain_tree, flat_groups
from repro.topology.numa import (
    LOCAL_DISTANCE,
    REMOTE_DISTANCE,
    NumaTopology,
    mesh_numa,
    symmetric_numa,
    uniform_topology,
)

__all__ = [
    "CacheModel",
    "LocalityTier",
    "no_cache_model",
    "SchedDomain",
    "build_domain_tree",
    "flat_groups",
    "LOCAL_DISTANCE",
    "REMOTE_DISTANCE",
    "NumaTopology",
    "mesh_numa",
    "symmetric_numa",
    "uniform_topology",
]

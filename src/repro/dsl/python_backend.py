"""Python backend: compile a DSL policy to an executable ``Policy``.

The compiled object is a first-class :class:`repro.core.policy.Policy`,
so everything in the library — the balancer, the simulator, and most
importantly the verification engine — consumes DSL policies exactly like
hand-written ones. This is the reproduction's version of the paper's
"one source, two targets" pipeline: the same declaration that produces
the C scheduling class is the one the proofs run against.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cpu import CoreSnapshot, CoreView
from repro.core.errors import DslValidationError
from repro.core.policy import Policy
from repro.dsl.ast_nodes import (
    AttrRef,
    BinaryOp,
    CallFn,
    ConstRef,
    Expr,
    NumberLit,
    PolicyDecl,
    UnaryOp,
)
from repro.dsl.parser import parse_policy
from repro.dsl.validate import validate_policy


def _read_attr(policy: "DslPolicy", view: CoreView, attr: str) -> float:
    """Read one core attribute, resolving ``load`` through the policy."""
    if attr == "load":
        return policy.load(view)
    if attr == "nr_current":
        return 1 if view.has_current else 0
    if attr == "nr_ready":
        return view.nr_ready
    if attr == "nr_threads":
        return view.nr_threads
    if attr == "weighted_load":
        return view.weighted_load
    if attr == "node":
        return view.node
    raise DslValidationError(f"unknown core attribute {attr!r}")


def evaluate(policy: "DslPolicy", expr: Expr,
             env: dict[str, CoreView]) -> float | bool:
    """Interpret ``expr`` with core parameters bound by ``env``."""
    if isinstance(expr, NumberLit):
        return expr.value
    if isinstance(expr, ConstRef):
        return policy.decl.constant_value(expr.name)
    if isinstance(expr, AttrRef):
        return _read_attr(policy, env[expr.var], expr.attr)
    if isinstance(expr, UnaryOp):
        value = evaluate(policy, expr.operand, env)
        if expr.op == "not":
            return not value
        return -value
    if isinstance(expr, BinaryOp):
        op = expr.op
        if op == "and":
            return bool(evaluate(policy, expr.lhs, env)) and bool(
                evaluate(policy, expr.rhs, env)
            )
        if op == "or":
            return bool(evaluate(policy, expr.lhs, env)) or bool(
                evaluate(policy, expr.rhs, env)
            )
        lhs = evaluate(policy, expr.lhs, env)
        rhs = evaluate(policy, expr.rhs, env)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "//":
            return lhs // rhs
        if op == "%":
            return lhs % rhs
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        raise DslValidationError(f"unknown operator {op!r}")
    if isinstance(expr, CallFn):
        args = [evaluate(policy, a, env) for a in expr.args]
        if expr.name == "min":
            return min(args)
        if expr.name == "max":
            return max(args)
        if expr.name == "abs":
            return abs(args[0])
        raise DslValidationError(f"unknown function {expr.name!r}")
    raise DslValidationError(f"unknown expression node {expr!r}")


def _expr_attrs(expr: Expr) -> set[str]:
    """Every core attribute an expression tree reads."""
    if isinstance(expr, AttrRef):
        return {expr.attr}
    if isinstance(expr, UnaryOp):
        return _expr_attrs(expr.operand)
    if isinstance(expr, BinaryOp):
        return _expr_attrs(expr.lhs) | _expr_attrs(expr.rhs)
    if isinstance(expr, CallFn):
        out: set[str] = set()
        for arg in expr.args:
            out |= _expr_attrs(arg)
        return out
    return set()


class DslPolicy(Policy):
    """A policy compiled from a DSL declaration.

    Attributes:
        decl: the validated :class:`~repro.dsl.ast_nodes.PolicyDecl`.
    """

    def __init__(self, decl: PolicyDecl) -> None:
        validate_policy(decl)
        self.decl = decl
        self.name = f"dsl:{decl.name}"
        # Derive the kernel-eligibility class from the declaration
        # itself: the filter and steal amount run through `evaluate`,
        # which can only observe scalar view attributes — so they are
        # loads-invariant exactly when no reachable clause reads `node`
        # (`load` references resolve through the load clause, which must
        # then be node-free too). Anything else opts out of the packed
        # kernel (see Policy.filter_invariance).
        attrs: set[str] = _expr_attrs(decl.filter.expr)
        if decl.steal is not None:
            attrs |= _expr_attrs(decl.steal.expr)
        if "load" in attrs and decl.load is not None:
            attrs |= _expr_attrs(decl.load.expr)
        self.filter_invariance = "none" if "node" in attrs else "loads"

    def load(self, core: CoreView) -> float:
        """The declared load metric; thread count when omitted."""
        if self.decl.load is None:
            return core.nr_threads
        return evaluate(
            self, self.decl.load.expr, {self.decl.load.param: core}
        )

    def can_steal(self, thief: CoreView, stealee: CoreView) -> bool:
        """Step 1: the declared filter."""
        clause = self.decl.filter
        return bool(evaluate(
            self, clause.expr,
            {clause.self_param: thief, clause.stealee_param: stealee},
        ))

    def steal_amount(self, thief: CoreView, stealee: CoreView) -> int:
        """Step 3: the declared amount; one task when omitted."""
        if self.decl.steal is None:
            return 1
        clause = self.decl.steal
        amount = evaluate(
            self, clause.expr,
            {clause.self_param: thief, clause.stealee_param: stealee},
        )
        return int(amount)

    def choose(self, thief: CoreView,
               candidates: Sequence[CoreSnapshot]) -> CoreSnapshot:
        """Step 2: the declared strategy."""
        strategy = self.decl.choice
        if strategy == "max_load":
            return max(candidates, key=lambda c: (self.load(c), -c.cid))
        if strategy == "min_load":
            return min(candidates, key=lambda c: (self.load(c), c.cid))
        if strategy == "first":
            return min(candidates, key=lambda c: c.cid)
        if strategy == "nearest":
            return min(
                candidates,
                key=lambda c: (abs(c.node - thief.node), c.cid),
            )
        raise DslValidationError(f"unknown choice strategy {strategy!r}")


def compile_policy(source: str) -> DslPolicy:
    """Parse, validate and compile DSL source into an executable policy.

    Raises:
        DslSyntaxError: on parse errors.
        DslValidationError: on static-validation errors.
    """
    return DslPolicy(parse_policy(source))

"""Canonical DSL sources used by docs, examples and tests.

``LISTING1_SOURCE`` is the paper's Listing 1 transcribed into this
reproduction's DSL; compiling it must produce a policy that behaves
identically to the hand-written
:class:`repro.policies.balance_count.BalanceCountPolicy` (the test suite
asserts observational equivalence and identical proof outcomes).
"""

from __future__ import annotations

#: Listing 1: the simple thread-count balancer the paper proves.
LISTING1_SOURCE = """\
# Listing 1 of the paper: a simple load balancer following the 3 steps.
policy balance_count {
    load(core) = core.nr_ready + core.nr_current;
    filter(self, stealee) = stealee.load - self.load >= 2;   # Step 1
    choice = max_load;                                       # Step 2
    steal(self, stealee) = 1;                                # Step 3
}
"""

#: The weighted balancer of Section 4.2, with the structural guard.
WEIGHTED_SOURCE = """\
# Balance the number of threads weighted by their importance (Sec. 4.2),
# guarded so victims always have a stealable (ready) task.
policy weighted_balance {
    load(core) = core.weighted_load;
    filter(self, stealee) = stealee.load - self.load >= 30
                            and stealee.nr_threads >= 2;
    choice = max_load;
    steal(self, stealee) = 1;
}
"""

#: Section 4.3's broken filter — the DSL happily expresses bad policies;
#: it is the verifier's job to refute them.
NAIVE_SOURCE = """\
# The incorrect filter of Section 4.3: steal from anyone overloaded,
# ignoring our own load. Not work-conserving under concurrency.
policy naive_overloaded {
    filter(self, stealee) = stealee.nr_threads >= 2;
    choice = max_load;
}
"""

#: A NUMA-flavoured policy: proven filter, locality-preferring choice.
NUMA_SOURCE = """\
# Listing 1's filter with a NUMA-aware step-2 choice: the proofs are
# identical because the choice is irrelevant to them (Section 3.1).
policy numa_balance {
    load(core) = core.nr_threads;
    filter(self, stealee) = stealee.load - self.load >= 2;
    choice = nearest;
    steal(self, stealee) = 1;
}
"""

#: Faster convergence: steal half the surplus (still provable).
HALVING_SOURCE = """\
# Steal half of the load gap per operation; converges in fewer rounds
# while preserving every obligation (victim keeps >= half the gap).
policy greedy_halving {
    load(core) = core.nr_ready + core.nr_current;
    filter(self, stealee) = stealee.load - self.load >= 2;
    choice = max_load;
    steal(self, stealee) = max(1, (stealee.load - self.load) // 2);
}
"""

#: Listing 1 with its tuning parameter as a named constant; compiles to
#: identical behaviour while the C backend emits ``#define MARGIN (2L)``
#: and the Scala backend ``val margin: BigInt = BigInt(2)``.
LISTING1_CONST_SOURCE = """\
# Listing 1 with the margin named: the value '2' is a design decision
# (see the margin ablation), so give it a name in every backend.
policy balance_count_const {
    const margin = 2;
    load(core) = core.nr_ready + core.nr_current;
    filter(self, stealee) = stealee.load - self.load >= margin;
    choice = max_load;
    steal(self, stealee) = 1;
}
"""

ALL_SOURCES = {
    "listing1": LISTING1_SOURCE,
    "listing1_const": LISTING1_CONST_SOURCE,
    "weighted": WEIGHTED_SOURCE,
    "naive": NAIVE_SOURCE,
    "numa": NUMA_SOURCE,
    "halving": HALVING_SOURCE,
}

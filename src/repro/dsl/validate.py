"""Static validation of parsed policies.

The validator enforces the well-formedness rules that make a DSL policy
eligible for both compilation targets:

* **scoping** — expressions may only read the attributes of their
  declared core parameters, and only attributes the core model exposes;
* **purity** — guaranteed by the grammar (no assignment, no foreign
  calls), re-checked here defensively over the AST so that AST values
  constructed programmatically get the same guarantee;
* **light typing** — the filter must be a boolean expression, load and
  steal must be numeric; ``and``/``or``/``not`` only combine booleans,
  arithmetic only combines numbers;
* **recursion** — ``x.load`` inside the load clause itself would recurse
  forever and is rejected;
* **choice** — the strategy must be one the backends implement.

Semantic properties (Lemma1, steal soundness, work conservation) are
*not* static checks: the compiled policy is handed to
:mod:`repro.verify`, which is the DSL's analogue of the paper's
Leon stage.
"""

from __future__ import annotations

from repro.core.errors import DslValidationError
from repro.dsl.ast_nodes import (
    ARITHMETIC_OPS,
    BUILTIN_FUNCTIONS,
    CHOICE_STRATEGIES,
    COMPARISON_OPS,
    CORE_ATTRIBUTES,
    LOGICAL_OPS,
    AttrRef,
    BinaryOp,
    CallFn,
    ConstRef,
    Expr,
    NumberLit,
    PolicyDecl,
    UnaryOp,
    walk,
)

#: Inferred expression types for the light checker.
BOOL = "bool"
NUM = "num"


def infer_type(expr: Expr, allowed_vars: frozenset[str],
               in_load_clause: bool = False,
               constants: frozenset[str] = frozenset()) -> str:
    """Infer ``bool``/``num`` for ``expr``, validating as we go.

    Args:
        expr: the expression to check.
        allowed_vars: core parameter names legal in this clause.
        in_load_clause: True when checking the load clause itself, where
            the recursive ``.load`` attribute is forbidden.
        constants: declared constant names resolvable in this policy.

    Returns:
        ``BOOL`` or ``NUM``.

    Raises:
        DslValidationError: on scoping, attribute or type errors.
    """
    if isinstance(expr, NumberLit):
        return NUM
    if isinstance(expr, ConstRef):
        if expr.name not in constants:
            raise DslValidationError(
                f"undeclared constant {expr.name!r}"
            )
        return NUM
    if isinstance(expr, AttrRef):
        if expr.var not in allowed_vars:
            raise DslValidationError(
                f"unknown parameter {expr.var!r}; in scope:"
                f" {sorted(allowed_vars)}"
            )
        if expr.attr not in CORE_ATTRIBUTES:
            raise DslValidationError(
                f"unknown core attribute {expr.attr!r}; available:"
                f" {sorted(CORE_ATTRIBUTES)}"
            )
        if in_load_clause and expr.attr == "load":
            raise DslValidationError(
                "the load clause cannot reference .load (infinite recursion)"
            )
        return NUM
    if isinstance(expr, UnaryOp):
        operand = infer_type(expr.operand, allowed_vars, in_load_clause,
                             constants)
        if expr.op == "not":
            if operand is not BOOL:
                raise DslValidationError("'not' requires a boolean operand")
            return BOOL
        if expr.op == "-":
            if operand is not NUM:
                raise DslValidationError("unary '-' requires a number")
            return NUM
        raise DslValidationError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        lhs = infer_type(expr.lhs, allowed_vars, in_load_clause,
                         constants)
        rhs = infer_type(expr.rhs, allowed_vars, in_load_clause,
                         constants)
        if expr.op in LOGICAL_OPS:
            if lhs is not BOOL or rhs is not BOOL:
                raise DslValidationError(
                    f"{expr.op!r} requires boolean operands"
                )
            return BOOL
        if expr.op in COMPARISON_OPS:
            if lhs is not NUM or rhs is not NUM:
                raise DslValidationError(
                    f"{expr.op!r} compares numbers, not booleans"
                )
            return BOOL
        if expr.op in ARITHMETIC_OPS:
            if lhs is not NUM or rhs is not NUM:
                raise DslValidationError(
                    f"{expr.op!r} requires numeric operands"
                )
            return NUM
        raise DslValidationError(f"unknown operator {expr.op!r}")
    if isinstance(expr, CallFn):
        if expr.name not in BUILTIN_FUNCTIONS:
            raise DslValidationError(
                f"unknown function {expr.name!r} (purity: only"
                f" {sorted(BUILTIN_FUNCTIONS)} are callable)"
            )
        if len(expr.args) != BUILTIN_FUNCTIONS[expr.name]:
            raise DslValidationError(
                f"{expr.name} takes {BUILTIN_FUNCTIONS[expr.name]}"
                f" argument(s), got {len(expr.args)}"
            )
        for arg in expr.args:
            if infer_type(arg, allowed_vars, in_load_clause,
                          constants) is not NUM:
                raise DslValidationError(
                    f"{expr.name} requires numeric arguments"
                )
        return NUM
    raise DslValidationError(f"unknown expression node {expr!r}")


def validate_policy(decl: PolicyDecl) -> None:
    """Validate a parsed policy, raising on the first problem.

    Raises:
        DslValidationError: describing the violation.
    """
    const_names = frozenset(name for name, _ in decl.constants)
    if len(const_names) != len(decl.constants):
        raise DslValidationError("duplicate constant declaration")
    params: set[str] = {decl.filter.self_param, decl.filter.stealee_param}
    if decl.load is not None:
        params.add(decl.load.param)
    if decl.steal is not None:
        params.update({decl.steal.self_param, decl.steal.stealee_param})
    shadowed = const_names & params
    if shadowed:
        raise DslValidationError(
            f"constants {sorted(shadowed)} shadow clause parameters"
        )

    if decl.load is not None:
        load_type = infer_type(
            decl.load.expr,
            frozenset({decl.load.param}),
            in_load_clause=True,
            constants=const_names,
        )
        if load_type is not NUM:
            raise DslValidationError("load clause must be numeric")

    filter_vars = frozenset(
        {decl.filter.self_param, decl.filter.stealee_param}
    )
    filter_type = infer_type(decl.filter.expr, filter_vars,
                             constants=const_names)
    if filter_type is not BOOL:
        raise DslValidationError(
            "filter clause must be boolean (use a comparison)"
        )

    if decl.steal is not None:
        steal_vars = frozenset(
            {decl.steal.self_param, decl.steal.stealee_param}
        )
        steal_type = infer_type(decl.steal.expr, steal_vars,
                                constants=const_names)
        if steal_type is not NUM:
            raise DslValidationError("steal clause must be numeric")

    if decl.choice not in CHOICE_STRATEGIES:
        raise DslValidationError(
            f"unknown choice strategy {decl.choice!r}; available:"
            f" {sorted(CHOICE_STRATEGIES)}"
        )


def selection_phase_reads(decl: PolicyDecl) -> set[str]:
    """All attributes the selection phase reads, for audit tooling.

    Everything is a read — the language has no writes — so this is the
    complete shared-state footprint of steps 1 and 2.
    """
    reads: set[str] = set()
    exprs: list[Expr] = [decl.filter.expr]
    if decl.load is not None:
        exprs.append(decl.load.expr)
    for expr in exprs:
        for node in walk(expr):
            if isinstance(node, AttrRef):
                reads.add(node.attr)
    return reads

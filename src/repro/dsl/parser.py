"""Recursive-descent parser for the policy DSL.

Grammar (EBNF)::

    policy      := "policy" IDENT "{" clause* "}"
    clause      := const_clause | load_clause | filter_clause
                 | steal_clause | choice_clause
    const_clause := "const" IDENT "=" ["-"] NUMBER ";"
    load_clause := "load" "(" IDENT ")" "=" expr ";"
    filter_clause := "filter" "(" IDENT "," IDENT ")" "=" expr ";"
    steal_clause  := "steal" "(" IDENT "," IDENT ")" "=" expr ";"
    choice_clause := "choice" "=" IDENT ";"

Constants must be declared before use; a bare identifier in an
expression resolves to a declared constant, anything else is an error.

    expr        := or_expr
    or_expr     := and_expr ("or" and_expr)*
    and_expr    := not_expr ("and" not_expr)*
    not_expr    := "not" not_expr | comparison
    comparison  := additive (cmp_op additive)?
    additive    := multiplicative (("+" | "-") multiplicative)*
    multiplicative := unary (("*" | "//" | "%") unary)*
    unary       := "-" unary | postfix
    postfix     := primary ("." IDENT)?
    primary     := NUMBER | IDENT | builtin "(" expr ("," expr)* ")"
                 | "(" expr ")"

Comparisons do not chain (``a < b < c`` is a syntax error), matching the
Scala source the paper verifies with Leon.
"""

from __future__ import annotations

from repro.core.errors import DslSyntaxError
from repro.dsl.ast_nodes import (
    BUILTIN_FUNCTIONS,
    COMPARISON_OPS,
    AttrRef,
    BinaryOp,
    CallFn,
    ConstRef,
    Expr,
    FilterClause,
    LoadClause,
    NumberLit,
    PolicyDecl,
    StealClause,
    UnaryOp,
)
from repro.dsl.lexer import Token, TokenKind, tokenize


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._constants: dict[str, int] = {}

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def error(self, message: str) -> DslSyntaxError:
        token = self.current
        return DslSyntaxError(message, line=token.line, column=token.column)

    def accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        token = self.current
        if token.kind is not kind:
            return None
        if text is not None and token.text != text:
            return None
        return self._advance()

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            want = text if text is not None else kind.value
            raise self.error(
                f"expected {want!r}, found {self.current.text!r}"
            )
        return token

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        expr = self._and_expr()
        while self.accept(TokenKind.OPERATOR, "or"):
            expr = BinaryOp("or", expr, self._and_expr())
        return expr

    def _and_expr(self) -> Expr:
        expr = self._not_expr()
        while self.accept(TokenKind.OPERATOR, "and"):
            expr = BinaryOp("and", expr, self._not_expr())
        return expr

    def _not_expr(self) -> Expr:
        if self.accept(TokenKind.OPERATOR, "not"):
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        expr = self._additive()
        token = self.current
        if token.kind is TokenKind.OPERATOR and token.text in COMPARISON_OPS:
            self._advance()
            rhs = self._additive()
            follow = self.current
            if (follow.kind is TokenKind.OPERATOR
                    and follow.text in COMPARISON_OPS):
                raise self.error("chained comparisons are not supported")
            return BinaryOp(token.text, expr, rhs)
        return expr

    def _additive(self) -> Expr:
        expr = self._multiplicative()
        while True:
            token = self.current
            if token.kind is TokenKind.OPERATOR and token.text in ("+", "-"):
                self._advance()
                expr = BinaryOp(token.text, expr, self._multiplicative())
            else:
                return expr

    def _multiplicative(self) -> Expr:
        expr = self._unary()
        while True:
            token = self.current
            if token.kind is TokenKind.OPERATOR and token.text in (
                "*", "//", "%"
            ):
                self._advance()
                expr = BinaryOp(token.text, expr, self._unary())
            else:
                return expr

    def _unary(self) -> Expr:
        if self.accept(TokenKind.OPERATOR, "-"):
            return UnaryOp("-", self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        if self.accept(TokenKind.PUNCT, "."):
            attr = self.expect(TokenKind.IDENT)
            if not isinstance(expr, _Name):
                raise self.error("attribute access requires a parameter name")
            return AttrRef(var=expr.name, attr=attr.text)
        if isinstance(expr, _Name):
            if expr.name in self._constants:
                return ConstRef(expr.name)
            raise self.error(
                f"bare identifier {expr.name!r}; did you mean"
                f" '{expr.name}.<attribute>' or a declared constant?"
            )
        return expr

    def _primary(self) -> Expr:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return NumberLit(int(token.text))
        if token.kind is TokenKind.IDENT:
            if token.text in BUILTIN_FUNCTIONS:
                self._advance()
                self.expect(TokenKind.PUNCT, "(")
                args = [self.parse_expr()]
                while self.accept(TokenKind.PUNCT, ","):
                    args.append(self.parse_expr())
                self.expect(TokenKind.PUNCT, ")")
                arity = BUILTIN_FUNCTIONS[token.text]
                if len(args) != arity:
                    raise self.error(
                        f"{token.text} takes {arity} argument(s),"
                        f" got {len(args)}"
                    )
                return CallFn(token.text, tuple(args))
            self._advance()
            return _Name(token.text)
        if self.accept(TokenKind.PUNCT, "("):
            expr = self.parse_expr()
            self.expect(TokenKind.PUNCT, ")")
            return expr
        raise self.error(f"expected an expression, found {token.text!r}")

    # ------------------------------------------------------------------
    # clauses
    # ------------------------------------------------------------------

    def parse_policy(self) -> PolicyDecl:
        self.expect(TokenKind.IDENT, "policy")
        name = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.PUNCT, "{")

        load: LoadClause | None = None
        filter_clause: FilterClause | None = None
        steal: StealClause | None = None
        choice: str | None = None

        while not self.accept(TokenKind.PUNCT, "}"):
            keyword = self.expect(TokenKind.IDENT)
            if keyword.text == "const":
                const_name = self.expect(TokenKind.IDENT).text
                if const_name in self._constants:
                    raise self.error(
                        f"duplicate constant {const_name!r}"
                    )
                self.expect(TokenKind.PUNCT, "=")
                negative = self.accept(TokenKind.OPERATOR, "-") is not None
                number = self.expect(TokenKind.NUMBER)
                value = int(number.text)
                self._constants[const_name] = -value if negative else value
            elif keyword.text == "load":
                if load is not None:
                    raise self.error("duplicate load clause")
                self.expect(TokenKind.PUNCT, "(")
                param = self.expect(TokenKind.IDENT).text
                self.expect(TokenKind.PUNCT, ")")
                self.expect(TokenKind.PUNCT, "=")
                load = LoadClause(param=param, expr=self.parse_expr())
            elif keyword.text == "filter":
                if filter_clause is not None:
                    raise self.error("duplicate filter clause")
                self_param, stealee_param = self._two_params()
                self.expect(TokenKind.PUNCT, "=")
                filter_clause = FilterClause(
                    self_param=self_param,
                    stealee_param=stealee_param,
                    expr=self.parse_expr(),
                )
            elif keyword.text == "steal":
                if steal is not None:
                    raise self.error("duplicate steal clause")
                self_param, stealee_param = self._two_params()
                self.expect(TokenKind.PUNCT, "=")
                steal = StealClause(
                    self_param=self_param,
                    stealee_param=stealee_param,
                    expr=self.parse_expr(),
                )
            elif keyword.text == "choice":
                if choice is not None:
                    raise self.error("duplicate choice clause")
                self.expect(TokenKind.PUNCT, "=")
                choice = self.expect(TokenKind.IDENT).text
            else:
                raise self.error(
                    f"unknown clause {keyword.text!r}; expected load,"
                    " filter, steal or choice"
                )
            self.expect(TokenKind.PUNCT, ";")

        if filter_clause is None:
            raise self.error("policy must declare a filter clause")
        return PolicyDecl(
            name=name,
            filter=filter_clause,
            load=load,
            steal=steal,
            choice=choice or "max_load",
            constants=tuple(self._constants.items()),
        )

    def _two_params(self) -> tuple[str, str]:
        self.expect(TokenKind.PUNCT, "(")
        first = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.PUNCT, ",")
        second = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.PUNCT, ")")
        if first == second:
            raise self.error("filter/steal parameters must be distinct")
        return first, second


class _Name:
    """Parser-internal: a bare identifier awaiting attribute access."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


def parse_policy(source: str) -> PolicyDecl:
    """Parse a complete ``policy NAME { ... }`` declaration.

    Raises:
        DslSyntaxError: with line/column on the first offending token.
    """
    parser = _Parser(tokenize(source))
    decl = parser.parse_policy()
    parser.expect(TokenKind.EOF)
    return decl


def parse_expression(source: str) -> Expr:
    """Parse a standalone expression (testing and tooling helper)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.expect(TokenKind.EOF)
    return expr

"""Tokenizer for the policy DSL.

Hand-rolled (no regex tables) so that error positions are exact and the
token stream is trivial to unit-test. Comments run from ``#`` to end of
line, mirroring the Scala listings in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.errors import DslSyntaxError


class TokenKind(Enum):
    """Lexical categories of the DSL."""

    IDENT = "ident"
    NUMBER = "number"
    PUNCT = "punct"      # { } ( ) , ; . =
    OPERATOR = "op"      # + - * // % == != <= >= < > and or not
    EOF = "eof"


#: Keywords that lex as operators, not identifiers.
WORD_OPERATORS = frozenset({"and", "or", "not"})

#: Multi-character operators, longest first so maximal munch works.
MULTI_CHAR_OPS = ("==", "!=", "<=", ">=", "//")

SINGLE_CHAR_OPS = frozenset("+-*%<>")

PUNCTUATION = frozenset("{}(),;.=")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: the :class:`TokenKind`.
        text: the exact source lexeme.
        line: 1-based source line.
        column: 1-based source column of the first character.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into tokens, ending with an EOF token.

    Raises:
        DslSyntaxError: on any character outside the language.
    """
    tokens: list[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)

    def error(message: str) -> DslSyntaxError:
        return DslSyntaxError(message, line=line, column=column)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_col = column
        two = source[i:i + 2]
        if two in MULTI_CHAR_OPS:
            tokens.append(Token(TokenKind.OPERATOR, two, line, start_col))
            i += 2
            column += 2
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(
                Token(TokenKind.NUMBER, source[i:j], line, start_col)
            )
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = (
                TokenKind.OPERATOR if word in WORD_OPERATORS
                else TokenKind.IDENT
            )
            tokens.append(Token(kind, word, line, start_col))
            column += j - i
            i = j
            continue
        if ch in SINGLE_CHAR_OPS:
            tokens.append(Token(TokenKind.OPERATOR, ch, line, start_col))
            i += 1
            column += 1
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, ch, line, start_col))
            i += 1
            column += 1
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens

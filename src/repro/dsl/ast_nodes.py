"""AST of the scheduling-policy DSL.

The paper's toolchain exposes the three-step abstractions "to kernel
developers via a domain-specific language (DSL), which is then compiled
to C code that can be integrated as a scheduling class into the Linux
kernel, and to Scala code that is verified by the Leon toolkit". This
package reproduces that pipeline; the AST here is the common intermediate
form consumed by all three backends
(:mod:`repro.dsl.python_backend`, :mod:`repro.dsl.c_backend`,
:mod:`repro.dsl.scala_backend`).

The language is *pure by construction*: there is no assignment, no call
to anything but the whitelisted math builtins, and the only values in
scope are the declared core parameters — which is how the DSL guarantees
the model's requirement that the selection phase "may not modify
runqueues" without any runtime policing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: Attributes of a core that policy expressions may read.
CORE_ATTRIBUTES = frozenset({
    "nr_ready",       # tasks waiting in the runqueue
    "nr_current",     # 1 when a task occupies the CPU, else 0
    "nr_threads",     # nr_ready + nr_current
    "weighted_load",  # CFS-weighted load
    "node",           # NUMA node id
    "load",           # the policy's own load() metric (recursive)
})

#: Builtin pure functions callable from expressions, with arities.
BUILTIN_FUNCTIONS = {
    "min": 2,
    "max": 2,
    "abs": 1,
}

#: Binary operators, grouped by kind for the light type checker.
ARITHMETIC_OPS = frozenset({"+", "-", "*", "//", "%"})
COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
LOGICAL_OPS = frozenset({"and", "or"})

#: Step-2 choice strategies the DSL can name.
CHOICE_STRATEGIES = frozenset({
    "max_load",   # most loaded candidate (the library default)
    "min_load",   # least loaded candidate
    "first",      # lowest core id
    "nearest",    # smallest NUMA distance (needs a topology at compile)
})


@dataclass(frozen=True)
class NumberLit:
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class ConstRef:
    """Reference to a policy-level named constant (``const margin = 2;``).

    Constants keep tuning parameters named through every backend: the C
    emitter turns them into ``#define``s, the Scala emitter into ``val``s,
    so the generated artifacts stay reviewable.
    """

    name: str


@dataclass(frozen=True)
class AttrRef:
    """``var.attr`` — reading one attribute of a bound core parameter.

    Attributes:
        var: the parameter name (e.g. ``self``, ``stealee``).
        attr: one of :data:`CORE_ATTRIBUTES`.
    """

    var: str
    attr: str


@dataclass(frozen=True)
class UnaryOp:
    """``-x`` or ``not x``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class BinaryOp:
    """Any infix operation: arithmetic, comparison or logical.

    Attributes:
        op: the operator lexeme (``+``, ``>=``, ``and``, ...).
        lhs: left operand.
        rhs: right operand.
    """

    op: str
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class CallFn:
    """A call to a whitelisted builtin (``min``/``max``/``abs``)."""

    name: str
    args: tuple["Expr", ...]


Expr = Union[NumberLit, ConstRef, AttrRef, UnaryOp, BinaryOp, CallFn]


@dataclass(frozen=True)
class LoadClause:
    """``load(core) = expr`` — the user-defined load metric."""

    param: str
    expr: Expr


@dataclass(frozen=True)
class FilterClause:
    """``filter(self, stealee) = expr`` — step 1, the object of the proofs."""

    self_param: str
    stealee_param: str
    expr: Expr


@dataclass(frozen=True)
class StealClause:
    """``steal(self, stealee) = expr`` — step 3's task count."""

    self_param: str
    stealee_param: str
    expr: Expr


@dataclass(frozen=True)
class PolicyDecl:
    """A complete policy declaration.

    Attributes:
        name: policy identifier.
        load: the load metric (defaults to thread count when omitted).
        filter: the mandatory step-1 filter.
        steal: step-3 amount (defaults to stealing one task).
        choice: step-2 strategy name from :data:`CHOICE_STRATEGIES`.
        constants: named integer constants usable in every clause
            (``const margin = 2;``), in declaration order.
    """

    name: str
    filter: FilterClause
    load: LoadClause | None = None
    steal: StealClause | None = None
    choice: str = "max_load"
    constants: tuple[tuple[str, int], ...] = ()

    def constant_value(self, name: str) -> int:
        """Look up a declared constant.

        Raises:
            KeyError: when no such constant exists.
        """
        for declared, value in self.constants:
            if declared == name:
                return value
        raise KeyError(f"no constant named {name!r}")


def walk(expr: Expr) -> list[Expr]:
    """All nodes of ``expr`` in pre-order (for analyses and tests)."""
    nodes: list[Expr] = [expr]
    if isinstance(expr, UnaryOp):
        nodes.extend(walk(expr.operand))
    elif isinstance(expr, BinaryOp):
        nodes.extend(walk(expr.lhs))
        nodes.extend(walk(expr.rhs))
    elif isinstance(expr, CallFn):
        for arg in expr.args:
            nodes.extend(walk(arg))
    return nodes


def referenced_vars(expr: Expr) -> set[str]:
    """Names of the core parameters an expression reads."""
    return {node.var for node in walk(expr) if isinstance(node, AttrRef)}


def render(expr: Expr) -> str:
    """Round-trippable text of an expression (fully parenthesised)."""
    if isinstance(expr, NumberLit):
        return str(expr.value)
    if isinstance(expr, ConstRef):
        return expr.name
    if isinstance(expr, AttrRef):
        return f"{expr.var}.{expr.attr}"
    if isinstance(expr, UnaryOp):
        sep = " " if expr.op == "not" else ""
        return f"({expr.op}{sep}{render(expr.operand)})"
    if isinstance(expr, BinaryOp):
        return f"({render(expr.lhs)} {expr.op} {render(expr.rhs)})"
    if isinstance(expr, CallFn):
        args = ", ".join(render(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"unknown expression node {expr!r}")

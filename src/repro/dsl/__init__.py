"""The scheduling-policy DSL and its three backends.

Pipeline (the paper's Figure-less but central toolchain idea)::

    source text --parse--> PolicyDecl --validate--> (static well-formedness)
        |--python_backend--> executable Policy  (simulated + verified)
        |--c_backend-------> C scheduling-class skeleton
        |--scala_backend---> Leon-style Scala (Listing 1/2 shape)
"""

from repro.dsl.ast_nodes import (
    BUILTIN_FUNCTIONS,
    CHOICE_STRATEGIES,
    CORE_ATTRIBUTES,
    AttrRef,
    BinaryOp,
    CallFn,
    ConstRef,
    Expr,
    FilterClause,
    LoadClause,
    NumberLit,
    PolicyDecl,
    StealClause,
    UnaryOp,
    referenced_vars,
    render,
    walk,
)
from repro.dsl.c_backend import emit_c, emit_header
from repro.dsl.examples import (
    ALL_SOURCES,
    HALVING_SOURCE,
    LISTING1_CONST_SOURCE,
    LISTING1_SOURCE,
    NAIVE_SOURCE,
    NUMA_SOURCE,
    WEIGHTED_SOURCE,
)
from repro.dsl.lexer import Token, TokenKind, tokenize
from repro.dsl.parser import parse_expression, parse_policy
from repro.dsl.python_backend import DslPolicy, compile_policy, evaluate
from repro.dsl.scala_backend import emit_scala
from repro.dsl.validate import (
    infer_type,
    selection_phase_reads,
    validate_policy,
)

__all__ = [
    "BUILTIN_FUNCTIONS",
    "CHOICE_STRATEGIES",
    "CORE_ATTRIBUTES",
    "AttrRef",
    "BinaryOp",
    "CallFn",
    "ConstRef",
    "Expr",
    "FilterClause",
    "LoadClause",
    "NumberLit",
    "PolicyDecl",
    "StealClause",
    "UnaryOp",
    "referenced_vars",
    "render",
    "walk",
    "emit_c",
    "emit_header",
    "emit_scala",
    "ALL_SOURCES",
    "HALVING_SOURCE",
    "LISTING1_CONST_SOURCE",
    "LISTING1_SOURCE",
    "NAIVE_SOURCE",
    "NUMA_SOURCE",
    "WEIGHTED_SOURCE",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_expression",
    "parse_policy",
    "DslPolicy",
    "compile_policy",
    "evaluate",
    "infer_type",
    "selection_phase_reads",
    "validate_policy",
]

"""Trace exporters: Chrome trace-event JSON and the summary table.

:func:`chrome_trace_document` emits the `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
that ``chrome://tracing`` and Perfetto load directly: one ``"ph": "X"``
(complete) event per span with microsecond ``ts``/``dur``, plus
``"M"`` metadata events naming each process row after its worker.
Chrome wants small integer pids/tids, so the exporter maps each
distinct ``(worker, pid)`` to a sequential process id (coordinator
first) and each thread to a sequential tid within its process.

:func:`summarize` folds the same spans into a
:class:`TraceSummary` — per-category count / total / mean / p95 —
for the ``--trace-summary`` table printed after a run.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.obs.trace import Span

#: Trailing name for the coordinator's process row in the trace UI.
COORDINATOR_LABEL = "coordinator"


def _process_label(worker: str) -> str:
    return worker if worker else COORDINATOR_LABEL


def chrome_trace_document(spans: Iterable[Span]) -> dict[str, Any]:
    """Build the loadable trace document for ``spans``."""
    ordered = sorted(spans, key=lambda span: (span.start, span.span_id))
    pids: dict[tuple[str, int], int] = {}
    tids: dict[tuple[int, int], int] = {}
    events: list[dict[str, Any]] = []
    for span in ordered:
        process = (span.worker, span.pid)
        if process not in pids:
            # Keep the coordinator on row 1 even when a worker's span
            # happens to start first on the merged timeline; workers
            # take 2, 3, ... in order of first appearance.
            if span.worker == "":
                pids[process] = 1
            else:
                pids[process] = 2 + sum(
                    1 for value in pids.values() if value != 1)
        pid = pids[process]
        thread = (pid, span.tid)
        if thread not in tids:
            tids[thread] = sum(1 for key in tids if key[0] == pid) + 1
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name, "cat": span.category, "ph": "X",
            "ts": span.start * 1e6, "dur": span.duration * 1e6,
            "pid": pid, "tid": tids[thread], "args": args,
        })
    metadata = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": f"{_process_label(worker)} (pid {os_pid})"}}
        for (worker, os_pid), pid in sorted(pids.items(),
                                            key=lambda item: item[1])
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | os.PathLike[str],
                       spans: Iterable[Span]) -> None:
    """Write the Chrome trace document for ``spans`` to ``path``."""
    document = chrome_trace_document(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")


def _p95(durations: Sequence[float]) -> float:
    ordered = sorted(durations)
    index = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return ordered[index]


@dataclass(frozen=True)
class CategoryStats:
    """Aggregate timing for one span category."""

    category: str
    count: int
    total_s: float
    mean_s: float
    p95_s: float


@dataclass(frozen=True)
class TraceSummary:
    """Per-category aggregates over one drained trace."""

    rows: tuple[CategoryStats, ...]

    def render(self) -> str:
        """The fixed-width table ``--trace-summary`` prints."""
        header = (f"{'category':<14} {'count':>8} {'total':>12} "
                  f"{'mean':>12} {'p95':>12}")
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.category:<14} {row.count:>8} "
                f"{row.total_s * 1e3:>10.2f}ms "
                f"{row.mean_s * 1e3:>10.3f}ms "
                f"{row.p95_s * 1e3:>10.3f}ms"
            )
        return "\n".join(lines)


def summarize(spans: Iterable[Span]) -> TraceSummary:
    """Aggregate spans per category, largest total time first."""
    buckets: dict[str, list[float]] = {}
    for span in spans:
        buckets.setdefault(span.category, []).append(span.duration)
    rows = [
        CategoryStats(
            category=category, count=len(durations),
            total_s=sum(durations),
            mean_s=sum(durations) / len(durations),
            p95_s=_p95(durations),
        )
        for category, durations in buckets.items()
    ]
    rows.sort(key=lambda row: (-row.total_s, row.category))
    return TraceSummary(rows=tuple(rows))

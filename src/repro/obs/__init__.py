"""repro.obs — engine-wide tracing, span profiling, and metrics.

Two stdlib-only instruments:

- :data:`TRACER` / :class:`Tracer` (:mod:`repro.obs.trace`): structured
  spans on the monotonic clock, recorded everywhere from kernel batch
  expansion to HTTP request handling, merged across processes, and
  exported as Chrome trace-event JSON (``--trace``) or a per-category
  summary table (``--trace-summary``).
- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`): labelled
  counters/gauges/histograms with Prometheus text exposition, backing
  the service's ``GET /metrics``.

Tracing is strictly observational: with the tracer disabled (the
default) every instrumented call site pays one attribute check, and
with it enabled no verdict, certificate, or CLI stdout byte changes —
CI diffs a traced run against an untraced one to keep it that way.
"""

from repro.obs.export import (
    CategoryStats,
    TraceSummary,
    chrome_trace_document,
    summarize,
    write_chrome_trace,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Metric, MetricsRegistry
from repro.obs.trace import (
    TRACER,
    Span,
    Tracer,
    span_from_dict,
    span_to_dict,
    spans_to_payload,
    trace_clock,
)

__all__ = [
    "CategoryStats",
    "DEFAULT_BUCKETS",
    "Metric",
    "MetricsRegistry",
    "Span",
    "TRACER",
    "Tracer",
    "TraceSummary",
    "chrome_trace_document",
    "span_from_dict",
    "span_to_dict",
    "spans_to_payload",
    "summarize",
    "trace_clock",
    "write_chrome_trace",
]

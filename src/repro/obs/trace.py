"""Structured span tracing for every repro engine.

One process-wide :data:`TRACER` records **spans** — named, categorised
intervals on the monotonic clock (:func:`trace_clock`), with parent
attribution through a thread-local stack and free-form ``key=value``
args. Instrumented code writes::

    with TRACER.span("closure.level", "closure", level=3) as span:
        ...
        span.set(fresh=n_fresh)

and pays exactly one attribute check per call site when tracing is
disabled (the default): :meth:`Tracer.span` returns a shared no-op
context manager whose ``__enter__``/``__exit__``/``set`` do nothing.
Nothing in this module imports outside the stdlib, so any layer —
kernel batches, the async partition loop, the HTTP front end — can
instrument itself without dependency or import-cycle concerns.

Crossing process boundaries
---------------------------

Spans recorded in a worker process cannot share the coordinator's
clock: each process's monotonic clock has an arbitrary epoch. The
protocol (see :mod:`repro.verify.distributed`) ships a worker's spans
back as plain dicts (:func:`spans_to_payload`) next to the worker's
*current* clock reading; :meth:`Tracer.ingest` then normalises every
start time by ``coordinator_now - worker_clock`` — the skew between
the two epochs as observed at result-receipt time — which lands the
worker's intervals on the coordinator timeline within one result
round-trip of their true position. Good enough to read a distributed
timeline; not a distributed-clock algorithm.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

#: The clock every span start/duration is measured on. One shared
#: callable so instrumentation, the ``--progress`` rate column, and
#: worker clock-offset normalisation all agree on the epoch.
trace_clock = time.perf_counter


@dataclass(frozen=True)
class Span:
    """One completed interval on the trace timeline.

    ``start`` is in seconds on the *recording process's* monotonic
    clock; :meth:`Tracer.ingest` rebases foreign spans onto the local
    clock, so every span held by one tracer shares a timeline.
    ``worker`` is ``""`` for spans recorded in this process and the
    worker's name (e.g. ``worker-1``) for ingested ones.
    """

    name: str
    category: str
    start: float
    duration: float
    span_id: int
    parent_id: int | None
    pid: int
    tid: int
    worker: str = ""
    args: Mapping[str, Any] = field(default_factory=dict)


class _NoOpSpan:
    """The disabled-path span handle: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **args: Any) -> None:
        return None


_NOOP = _NoOpSpan()


class _SpanHandle:
    """A live span: opened by ``with``, closed (and recorded) on exit."""

    __slots__ = ("_tracer", "name", "category", "args",
                 "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.span_id = tracer._next_id()
        self.parent_id: int | None = None
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self.parent_id = self._tracer._push(self.span_id)
        self._start = trace_clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = trace_clock()
        self._tracer._pop()
        self._tracer._record(Span(
            name=self.name, category=self.category,
            start=self._start, duration=end - self._start,
            span_id=self.span_id, parent_id=self.parent_id,
            pid=os.getpid(), tid=threading.get_ident(),
            worker=self._tracer.worker, args=self.args,
        ))

    def set(self, **args: Any) -> None:
        """Attach args discovered mid-span (outcomes, counts)."""
        self.args.update(args)


class Tracer:
    """A process-wide span recorder, disabled until :meth:`enable`.

    Thread-safe: spans from any thread land in one list under a lock,
    and parent attribution uses a per-thread stack so concurrently
    open spans never adopt each other's children.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.worker = ""
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- lifecycle ------------------------------------------------------

    def enable(self, worker: str = "") -> None:
        """Start recording; ``worker`` labels this process's spans."""
        self.worker = worker
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (already-recorded spans stay until drained)."""
        self.enabled = False

    def drain(self) -> tuple[Span, ...]:
        """Return every recorded span and clear the buffer."""
        with self._lock:
            spans = tuple(self._spans)
            self._spans.clear()
        return spans

    def spans(self) -> tuple[Span, ...]:
        """A snapshot of the recorded spans, oldest first."""
        with self._lock:
            return tuple(self._spans)

    # -- recording ------------------------------------------------------

    def span(self, name: str, category: str = "default",
             **args: Any) -> Any:
        """A context manager timing one interval; no-op when disabled."""
        if not self.enabled:
            return _NOOP
        return _SpanHandle(self, name, category, args)

    def instant(self, name: str, category: str = "default",
                **args: Any) -> None:
        """Record a zero-duration event (steals, forwards, drops)."""
        if not self.enabled:
            return
        with self._lock:
            parent = self._peek()
            self._spans.append(Span(
                name=name, category=category, start=trace_clock(),
                duration=0.0, span_id=next(self._ids), parent_id=parent,
                pid=os.getpid(), tid=threading.get_ident(),
                worker=self.worker, args=args,
            ))

    def ingest(self, payload: Iterable[Mapping[str, Any]], *,
               clock: float, worker: str, pid: int | None = None) -> None:
        """Merge spans shipped from another process onto this timeline.

        ``clock`` is the foreign process's :func:`trace_clock` reading
        taken when it packaged the spans; the offset to local time is
        applied to every start. Dropped silently when disabled (a
        result can arrive after the CLI already exported the trace).
        """
        if not self.enabled:
            return
        offset = trace_clock() - clock
        spans = [span_from_dict(doc, offset=offset, worker=worker,
                                pid=pid) for doc in payload]
        with self._lock:
            self._spans.extend(spans)

    # -- internals ------------------------------------------------------

    def _next_id(self) -> int:
        return next(self._ids)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_id: int) -> int | None:
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(span_id)
        return parent

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def _peek(self) -> int | None:
        stack = self._stack()
        return stack[-1] if stack else None


def span_to_dict(span: Span) -> dict[str, Any]:
    """A plain-dict form of one span — picklable and JSON-safe as long
    as the args were (instrumentation only passes str/int/float/bool)."""
    return {
        "name": span.name, "category": span.category,
        "start": span.start, "duration": span.duration,
        "span_id": span.span_id, "parent_id": span.parent_id,
        "pid": span.pid, "tid": span.tid, "worker": span.worker,
        "args": dict(span.args),
    }


def span_from_dict(doc: Mapping[str, Any], *, offset: float = 0.0,
                   worker: str | None = None,
                   pid: int | None = None) -> Span:
    """Rebuild a span from its dict form, optionally rebasing its
    clock and re-attributing it to a named worker."""
    return Span(
        name=str(doc["name"]), category=str(doc["category"]),
        start=float(doc["start"]) + offset,
        duration=float(doc["duration"]),
        span_id=int(doc["span_id"]),
        parent_id=(None if doc.get("parent_id") is None
                   else int(doc["parent_id"])),
        pid=int(doc["pid"]) if pid is None else pid,
        tid=int(doc["tid"]),
        worker=str(doc.get("worker", "")) if worker is None else worker,
        args=dict(doc.get("args", {})),
    )


def spans_to_payload(spans: Iterable[Span]) -> tuple[dict[str, Any], ...]:
    """Serialise spans for the wire (see the module docstring)."""
    return tuple(span_to_dict(span) for span in spans)


#: The process-wide tracer every instrumented module imports. Disabled
#: by default: the hot path pays one ``self.enabled`` check.
TRACER = Tracer()

"""A labelled metrics registry with Prometheus text exposition.

:class:`MetricsRegistry` holds counters, gauges, and histograms —
the three instrument shapes Prometheus scrapes — created once at
wiring time and bumped from any thread. :meth:`MetricsRegistry.render`
emits the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket`` rows with
``le`` labels, ``_sum``/``_count``), which is what
``GET /metrics`` with ``Accept: text/plain`` serves.

Like the tracer this is stdlib-only and registry-scoped rather than
process-global: every :class:`~repro.service.http.VerificationService`
owns its own registry, so two services in one test process never
cross-contaminate each other's counters.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterator, Sequence

#: Default histogram buckets (seconds): tuned for request latencies
#: from sub-millisecond warm hits to minute-long cold closures.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

_VALID_TYPES = ("counter", "gauge", "histogram")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(names: Sequence[str], values: Sequence[str],
                   extra: str = "") -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(names, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Child:
    """One labelled time series inside a metric family."""

    __slots__ = ("_lock", "value", "bucket_counts", "sum")

    def __init__(self, n_buckets: int = 0) -> None:
        self._lock = threading.Lock()
        self.value = 0.0
        self.bucket_counts = [0] * (n_buckets + 1)  # trailing +Inf
        self.sum = 0.0

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def set_to(self, value: float) -> None:
        with self._lock:
            self.value = value

    def observe(self, value: float, boundaries: Sequence[float]) -> None:
        index = bisect_left(boundaries, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.value += 1  # observation count


class Metric:
    """One metric family: a name, a type, and its labelled children.

    Created through the registry (:meth:`MetricsRegistry.counter` and
    friends), never directly. Unlabelled families use their single
    ``()`` child implicitly: call :meth:`inc` / :meth:`set` /
    :meth:`observe` on the family. Labelled families hand out children
    via :meth:`labels`.
    """

    def __init__(self, name: str, help_text: str, metric_type: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = ()) -> None:
        if metric_type not in _VALID_TYPES:
            raise ValueError(f"unknown metric type {metric_type!r}")
        self.name = name
        self.help_text = help_text
        self.metric_type = metric_type
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child] = {}
        if not self.labelnames:
            self._children[()] = _Child(len(self.buckets))

    def labels(self, **labelvalues: str) -> "_BoundMetric":
        """The child series for one label-value assignment."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got "
                f"{tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _Child(len(self.buckets))
        return _BoundMetric(self, child)

    # -- unlabelled conveniences ---------------------------------------

    def _only_child(self) -> _Child:
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled; use .labels(...) first"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._only_child().add(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only_child().add(-amount)

    def set(self, value: float) -> None:
        self._only_child().set_to(value)

    def observe(self, value: float) -> None:
        self._only_child().observe(value, self.buckets)

    @property
    def value(self) -> float:
        """Unlabelled current value (observation count for histograms)."""
        return self._only_child().value

    # -- exposition -----------------------------------------------------

    def _render(self) -> Iterator[str]:
        yield f"# HELP {self.name} {self.help_text}"
        yield f"# TYPE {self.name} {self.metric_type}"
        with self._lock:
            children = list(self._children.items())
        for key, child in children:
            if self.metric_type == "histogram":
                cumulative = 0
                for boundary, count in zip(
                        tuple(self.buckets) + (float("inf"),),
                        child.bucket_counts):
                    cumulative += count
                    le = f'le="{_format_value(boundary)}"'
                    labels = _render_labels(self.labelnames, key, le)
                    yield f"{self.name}_bucket{labels} {cumulative}"
                labels = _render_labels(self.labelnames, key)
                yield (f"{self.name}_sum{labels} "
                       f"{_format_value(child.sum)}")
                yield f"{self.name}_count{labels} {cumulative}"
            else:
                labels = _render_labels(self.labelnames, key)
                yield (f"{self.name}{labels} "
                       f"{_format_value(child.value)}")


class _BoundMetric:
    """A metric family bound to one child (one label assignment)."""

    __slots__ = ("_metric", "_child")

    def __init__(self, metric: Metric, child: _Child) -> None:
        self._metric = metric
        self._child = child

    def inc(self, amount: float = 1.0) -> None:
        self._child.add(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._child.add(-amount)

    def set(self, value: float) -> None:
        self._child.set_to(value)

    def observe(self, value: float) -> None:
        self._child.observe(value, self._metric.buckets)

    @property
    def value(self) -> float:
        return self._child.value


class MetricsRegistry:
    """A named collection of metric families, rendered together."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _register(self, metric: Metric) -> Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(
                    f"metric {metric.name!r} already registered"
                )
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Metric:
        """A monotonically increasing count."""
        return self._register(
            Metric(name, help_text, "counter", labelnames))

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> Metric:
        """A value that goes up and down (in-flight requests)."""
        return self._register(Metric(name, help_text, "gauge",
                                     labelnames))

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  ) -> Metric:
        """A distribution with cumulative buckets (latencies, sizes)."""
        return self._register(
            Metric(name, help_text, "histogram", labelnames,
                   buckets=tuple(sorted(buckets))))

    def get(self, name: str) -> Metric | None:
        """The registered family called ``name``, if any."""
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The Prometheus text exposition of every family, in
        registration order, trailing newline included."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric._render())
        return "\n".join(lines) + "\n" if lines else ""


def collect_values(registry: MetricsRegistry) -> dict[str, Any]:
    """A flat debugging snapshot: ``name{labels}`` -> value/sum."""
    snapshot: dict[str, Any] = {}
    for line in registry.render().splitlines():
        if line.startswith("#") or not line:
            continue
        name, _, value = line.rpartition(" ")
        snapshot[name] = float(value) if value != "+Inf" else value
    return snapshot

"""Workloads: the applications driving the motivation experiments."""

from repro.workloads.base import (
    PLACEMENTS,
    Placement,
    Workload,
    make_first_k,
    make_random_placement,
    make_round_robin,
    place_idlest,
    place_last_core,
    place_pack,
)
from repro.workloads.churn import ChurnWorkload
from repro.workloads.database import OltpWorkload
from repro.workloads.mixed import MixedWorkload
from repro.workloads.scientific import BarrierWorkload
from repro.workloads.synthetic import (
    BurstyArrivalsWorkload,
    ForkJoinWorkload,
    StaticImbalanceWorkload,
)

__all__ = [
    "PLACEMENTS",
    "Placement",
    "Workload",
    "make_first_k",
    "make_random_placement",
    "make_round_robin",
    "place_idlest",
    "place_last_core",
    "place_pack",
    "ChurnWorkload",
    "OltpWorkload",
    "MixedWorkload",
    "BarrierWorkload",
    "BurstyArrivalsWorkload",
    "ForkJoinWorkload",
    "StaticImbalanceWorkload",
]

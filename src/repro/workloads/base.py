"""Workload framework: placement strategies and the workload base class.

Workloads decide *where tasks wake up*, which is half of the wasted-cores
story: CFS-like schedulers wake a thread on (or near) the core where it
last ran, which preserves cache locality but piles threads up when the
load balancer fails to spread them. The placement strategies here span
the spectrum the experiments need — from adversarial packing (everything
on core 0) to the idealised "idlest core" oracle.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from repro.core.errors import ConfigurationError
from repro.core.machine import Machine
from repro.core.task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation

#: A placement strategy maps (machine, task) to a destination core id.
Placement = Callable[[Machine, Task], int]


def place_pack(machine: Machine, task: Task) -> int:
    """Adversarial packing: everything lands on core 0.

    The worst case for work conservation; used to measure how fast a
    balancer digs itself out.
    """
    return 0


def place_last_core(machine: Machine, task: Task) -> int:
    """CFS-like wakeup: back where the task last ran (core 0 if never).

    Cache-friendly and pathology-friendly: without a working balancer,
    whatever imbalance existed reproduces itself at every wakeup.
    """
    return task.last_core if task.last_core is not None else 0


def place_idlest(machine: Machine, task: Task) -> int:
    """Oracle placement: the least loaded core right now.

    What a perfect wake-balancer would do; gives the upper-bound
    baseline its advantage.
    """
    return min(machine.cores, key=lambda c: (c.nr_threads, c.cid)).cid


def make_round_robin() -> Placement:
    """Round-robin placement with private state (fresh counter per call)."""
    counter = {"next": 0}

    def place(machine: Machine, task: Task) -> int:
        cid = counter["next"] % machine.n_cores
        counter["next"] += 1
        return cid

    return place


def make_random_placement(seed: int) -> Placement:
    """Seeded uniform-random placement."""
    rng = random.Random(seed)

    def place(machine: Machine, task: Task) -> int:
        return rng.randrange(machine.n_cores)

    return place


def make_first_k(k: int) -> Placement:
    """Round-robin over only the first ``k`` cores (skewed wakeups).

    Models the database pathology where connection handlers wake workers
    on a subset of the machine.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    counter = {"next": 0}

    def place(machine: Machine, task: Task) -> int:
        cid = counter["next"] % min(k, machine.n_cores)
        counter["next"] += 1
        return cid

    return place


PLACEMENTS: dict[str, Callable[[], Placement]] = {
    "pack": lambda: place_pack,
    "last_core": lambda: place_last_core,
    "idlest": lambda: place_idlest,
    "round_robin": make_round_robin,
}


class Workload(ABC):
    """Base class for simulator workloads.

    Subclasses create tasks in :meth:`attach`, react to completions in
    :meth:`on_task_finished`, optionally inject arrivals in
    :meth:`on_tick`, and declare completion via :meth:`finished`.

    Attributes:
        name: identifier used in benchmark tables.
        placement: strategy used when (re)placing woken tasks.
    """

    name: str = "workload"

    def __init__(self, placement: Placement | None = None) -> None:
        self.placement = placement or place_last_core

    @abstractmethod
    def attach(self, sim: "Simulation") -> None:
        """Create the initial task population on ``sim.machine``."""

    def on_tick(self, sim: "Simulation") -> None:
        """Hook for arrivals; default: nothing."""

    def on_task_finished(self, sim: "Simulation", task: Task,
                         cid: int) -> None:
        """Hook for completions; default: nothing."""

    @abstractmethod
    def finished(self, sim: "Simulation") -> bool:
        """Whether the workload has run to completion."""

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name

"""Closed-loop OLTP-style database workload.

The paper's second motivation number: "up to 25% decrease in throughput
for realistic database workloads". The shape behind it: a pool of worker
threads executes transactions back to back; each completion immediately
wakes the worker for the next transaction, and CFS-like wakeup placement
puts it back where it last ran. If the balancer fails to spread workers,
some cores queue two or three workers while others idle, and committed
transactions per second drop by tens of percent — not many-fold, because
every worker still runs, just late.

:class:`OltpWorkload` reproduces this: ``n_workers`` closed-loop workers,
transaction lengths sampled from a seeded uniform distribution, optional
*heavy analytics workers* (low niceness → high CFS weight) that recreate
the Group Imbalance conditions for the CFS-like baseline.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError
from repro.core.task import Task, TaskState
from repro.workloads.base import Placement, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class OltpWorkload(Workload):
    """Closed-loop transaction processing.

    Attributes:
        n_workers: OLTP worker threads (nice 0).
        txn_min, txn_max: uniform bounds on transaction length (ticks).
        n_heavy: additional heavy analytics threads that never finish;
            their high weight distorts weighted-average balancers (the
            Group Imbalance ingredient).
        heavy_nice: niceness of the heavy threads (negative = heavier).
        duration: measurement window in ticks; the workload reports
            finished after it (throughput = committed / duration).
    """

    name = "oltp"

    def __init__(self, n_workers: int, txn_min: int = 4, txn_max: int = 12,
                 duration: int = 2000,
                 placement: Placement | None = None,
                 n_heavy: int = 0, heavy_nice: int = -10,
                 seed: int = 0) -> None:
        super().__init__(placement=placement)
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        if not 1 <= txn_min <= txn_max:
            raise ConfigurationError(
                f"need 1 <= txn_min <= txn_max, got {txn_min}..{txn_max}"
            )
        if duration < 1:
            raise ConfigurationError(f"duration must be >= 1, got {duration}")
        if n_heavy < 0:
            raise ConfigurationError(f"n_heavy must be >= 0, got {n_heavy}")
        self.n_workers = n_workers
        self.txn_min = txn_min
        self.txn_max = txn_max
        self.duration = duration
        self.n_heavy = n_heavy
        self.heavy_nice = heavy_nice
        self._rng = random.Random(seed)
        self.committed = 0

    def _txn_length(self) -> int:
        return self._rng.randint(self.txn_min, self.txn_max)

    def attach(self, sim: "Simulation") -> None:
        """Create workers (and heavy analytics threads) and place them."""
        for i in range(self.n_workers):
            task = Task(
                work=self._txn_length(),
                name=f"oltp_w{i}",
            )
            sim.place(task, self.placement(sim.machine, task))
        for i in range(self.n_heavy):
            heavy = Task(
                nice=self.heavy_nice,
                work=None,  # runs for the whole experiment
                name=f"analytics{i}",
            )
            sim.place(heavy, self.placement(sim.machine, heavy))

    def on_task_finished(self, sim: "Simulation", task: Task,
                         cid: int) -> None:
        """Commit the transaction and immediately start the next one."""
        self.committed += 1
        task.work = task.executed + self._txn_length()
        task.state = TaskState.READY
        sim.place(task, self.placement(sim.machine, task))

    def finished(self, sim: "Simulation") -> bool:
        """The measurement window has elapsed."""
        return sim.clock.now >= self.duration

    def throughput(self) -> float:
        """Committed transactions per tick over the window."""
        return self.committed / self.duration

    def describe(self) -> str:
        heavy = f" + {self.n_heavy} heavy" if self.n_heavy else ""
        return (
            f"oltp({self.n_workers} workers{heavy},"
            f" txn {self.txn_min}..{self.txn_max}, {self.duration} ticks)"
        )

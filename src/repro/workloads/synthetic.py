"""Synthetic workloads for balancing studies and stress tests.

These exercise the balancer in isolation from application semantics:
static imbalances (how fast does the machine reach a work-conserving
state?), bursty arrivals (does it keep up with churn in the offered
load?), and fork/join trees (recursive parallelism with skewed spawn
points).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

from repro.core.errors import ConfigurationError
from repro.core.task import Task
from repro.workloads.base import Placement, Workload, place_pack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class StaticImbalanceWorkload(Workload):
    """A fixed population of infinite tasks, placed per a load vector.

    The purest balancing study: no arrivals, no completions — exactly the
    "no thread enters or leaves the runqueues" assumption of the paper's
    proofs. The interesting output is the metrics' ``bad_ticks``: how
    long the machine stayed in a wasted-core state.

    Attributes:
        loads: per-core initial thread counts.
    """

    name = "static_imbalance"

    def __init__(self, loads: Sequence[int]) -> None:
        super().__init__()
        if any(load < 0 for load in loads):
            raise ConfigurationError("loads must be >= 0")
        self.loads = tuple(loads)

    def attach(self, sim: "Simulation") -> None:
        if sim.machine.n_cores != len(self.loads):
            raise ConfigurationError(
                f"workload has {len(self.loads)} loads for"
                f" {sim.machine.n_cores} cores"
            )
        for cid, load in enumerate(self.loads):
            for k in range(load):
                sim.place(Task(work=None, name=f"static_c{cid}_{k}"), cid)

    def finished(self, sim: "Simulation") -> bool:
        """Never finishes on its own; run with ``max_ticks``."""
        return False

    def describe(self) -> str:
        return f"static_imbalance(loads={list(self.loads)})"


class BurstyArrivalsWorkload(Workload):
    """Bernoulli bursts of finite tasks arriving at a placement point.

    Every tick, with probability ``burst_prob``, ``burst_size`` tasks of
    ``task_work`` units arrive and are placed by the placement strategy
    (packed by default — the stressful case). Finishes when ``n_bursts``
    bursts have arrived and every task has completed.

    Attributes:
        burst_prob: per-tick arrival probability.
        burst_size: tasks per burst.
        task_work: work units per task.
        n_bursts: total bursts to inject.
    """

    name = "bursty"

    def __init__(self, burst_prob: float = 0.2, burst_size: int = 4,
                 task_work: int = 8, n_bursts: int = 25,
                 placement: Placement | None = None,
                 seed: int = 0) -> None:
        super().__init__(placement=placement or place_pack)
        if not 0 < burst_prob <= 1:
            raise ConfigurationError(
                f"burst_prob must be in (0, 1], got {burst_prob}"
            )
        if burst_size < 1 or task_work < 1 or n_bursts < 1:
            raise ConfigurationError(
                "burst_size, task_work and n_bursts must be >= 1"
            )
        self.burst_prob = burst_prob
        self.burst_size = burst_size
        self.task_work = task_work
        self.n_bursts = n_bursts
        self._rng = random.Random(seed)
        self._bursts_injected = 0
        self._outstanding = 0

    def attach(self, sim: "Simulation") -> None:
        """No initial population; bursts arrive via :meth:`on_tick`."""

    def on_tick(self, sim: "Simulation") -> None:
        if self._bursts_injected >= self.n_bursts:
            return
        if self._rng.random() >= self.burst_prob:
            return
        self._bursts_injected += 1
        for i in range(self.burst_size):
            task = Task(
                work=self.task_work,
                name=f"burst{self._bursts_injected}_{i}",
            )
            self._outstanding += 1
            sim.place(task, self.placement(sim.machine, task))

    def on_task_finished(self, sim: "Simulation", task: Task,
                         cid: int) -> None:
        self._outstanding -= 1

    def finished(self, sim: "Simulation") -> bool:
        return (
            self._bursts_injected >= self.n_bursts
            and self._outstanding == 0
        )

    def describe(self) -> str:
        return (
            f"bursty(p={self.burst_prob}, size={self.burst_size},"
            f" bursts={self.n_bursts})"
        )


class ForkJoinWorkload(Workload):
    """A binary fork tree: tasks spawn two children until a depth limit.

    All spawns land on the *parent's* core (the realistic case — fork
    wakes the child where the parent ran), so the tree keeps re-creating
    local pileups that the balancer must spread. Finishes when every node
    of the tree has executed.

    Attributes:
        depth: tree depth; the tree has ``2**(depth+1) - 1`` tasks.
        node_work: work units per tree node.
    """

    name = "fork_join"

    def __init__(self, depth: int = 4, node_work: int = 6) -> None:
        super().__init__()
        if depth < 0:
            raise ConfigurationError(f"depth must be >= 0, got {depth}")
        if node_work < 1:
            raise ConfigurationError(f"node_work must be >= 1, got {node_work}")
        self.depth = depth
        self.node_work = node_work
        self._outstanding = 0
        self._spawned = 0
        self._task_depth: dict[int, int] = {}

    def attach(self, sim: "Simulation") -> None:
        root = Task(work=self.node_work, name="fork_root")
        self._task_depth[root.tid] = 0
        self._outstanding = 1
        self._spawned = 1
        sim.place(root, 0)

    def on_task_finished(self, sim: "Simulation", task: Task,
                         cid: int) -> None:
        self._outstanding -= 1
        depth = self._task_depth.pop(task.tid, self.depth)
        if depth >= self.depth:
            return
        for i in range(2):
            child = Task(
                work=self.node_work,
                name=f"fork_d{depth + 1}_{self._spawned}",
            )
            self._task_depth[child.tid] = depth + 1
            self._outstanding += 1
            self._spawned += 1
            sim.place(child, cid)  # children wake on the parent's core

    def finished(self, sim: "Simulation") -> bool:
        return self._spawned > 0 and self._outstanding == 0

    @property
    def total_tasks(self) -> int:
        """Tree size: ``2**(depth+1) - 1`` nodes."""
        return 2 ** (self.depth + 1) - 1

    def describe(self) -> str:
        return f"fork_join(depth={self.depth}, node_work={self.node_work})"

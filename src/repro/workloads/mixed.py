"""Multi-application colocation: workloads sharing one machine.

The paper's related-work section faults regression testing for running
applications "in isolation to avoid performance fluctuations due to non
deterministic scheduling decisions in multi-application workloads",
noting such tests "are unlikely to find complex bugs that happen when
multiple applications are scheduled together". The EuroSys'16 bugs the
paper builds on were exactly colocation bugs (an R process beside a
database; make beside scientific apps).

:class:`MixedWorkload` composes any set of workloads onto one machine:
each component keeps its own placement policy, task population and
completion criterion, while the scheduler under test sees their union.
The colocation benchmark runs a barrier application *beside* an OLTP
database and measures what each costs the other under different
balancers — the experiment isolation-based testing cannot run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.errors import ConfigurationError
from repro.core.task import Task
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class MixedWorkload(Workload):
    """Several workloads co-scheduled on one machine.

    Callbacks fan out to every component; task-completion events are
    routed to the component that owns the task (components never see
    each other's tasks). The mix is finished when every component is.

    Attributes:
        components: the colocated workloads, in attach order.
    """

    name = "mixed"

    def __init__(self, components: Sequence[Workload]) -> None:
        super().__init__()
        if not components:
            raise ConfigurationError("MixedWorkload needs >= 1 component")
        self.components = list(components)
        self._owner_of_task: dict[int, Workload] = {}

    # ------------------------------------------------------------------
    # ownership routing
    # ------------------------------------------------------------------

    def _adopt_new_tasks(self, sim: "Simulation",
                         component: Workload) -> None:
        """Claim ownership of tasks the component just created."""
        for task in sim.machine.tasks():
            if task.tid not in self._owner_of_task:
                self._owner_of_task[task.tid] = component

    def attach(self, sim: "Simulation") -> None:
        for component in self.components:
            component.attach(sim)
            self._adopt_new_tasks(sim, component)

    def on_tick(self, sim: "Simulation") -> None:
        for component in self.components:
            component.on_tick(sim)
            self._adopt_new_tasks(sim, component)

    def on_task_finished(self, sim: "Simulation", task: Task,
                         cid: int) -> None:
        owner = self._owner_of_task.get(task.tid)
        if owner is None:
            return
        owner.on_task_finished(sim, task, cid)
        # The owner may have revived the task (closed-loop workloads) or
        # spawned new ones; adopt anything fresh.
        self._adopt_new_tasks(sim, owner)

    def finished(self, sim: "Simulation") -> bool:
        return all(c.finished(sim) for c in self.components)

    def describe(self) -> str:
        inner = " + ".join(c.describe() for c in self.components)
        return f"mixed({inner})"

    def owner_name(self, task: Task) -> str | None:
        """Which component owns ``task`` (metrics attribution)."""
        owner = self._owner_of_task.get(task.tid)
        return owner.name if owner is not None else None

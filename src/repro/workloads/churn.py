"""Thread churn: the boundary of the paper's proof assumption.

The proofs assume "no thread enters or leaves the runqueues (e.g., no
thread is created or terminated)", because unconstrained churn can
perpetually deny the balancer its steals ("one could imagine that threads
always terminate before being stolen"). This workload creates and
destroys threads at a configurable rate precisely to probe that boundary:

* the *safety* obligations (no lost tasks, no victim left idle, every
  failure attributed) must keep holding under churn — they are per-round
  properties, untouched by the assumption;
* the *liveness* bound (the N of work conservation) may degrade, and the
  experiment measures how bad it gets as churn increases.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError
from repro.core.task import Task
from repro.workloads.base import Placement, Workload, place_pack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class ChurnWorkload(Workload):
    """Random task creation and termination at a steady rate.

    Every tick, with probability ``arrival_prob``, a new finite task
    arrives (placed by the placement strategy, packed by default); task
    lengths are uniform in ``[work_min, work_max]``, so departures happen
    naturally as tasks finish. The population hovers around
    ``arrival_prob * mean_work`` tasks (Little's law).

    Attributes:
        arrival_prob: per-tick probability of a new task.
        work_min, work_max: uniform bounds on task length.
        duration: measurement window in ticks.
    """

    name = "churn"

    def __init__(self, arrival_prob: float = 0.5, work_min: int = 4,
                 work_max: int = 20, duration: int = 2000,
                 placement: Placement | None = None,
                 seed: int = 0) -> None:
        super().__init__(placement=placement or place_pack)
        if not 0 < arrival_prob <= 1:
            raise ConfigurationError(
                f"arrival_prob must be in (0, 1], got {arrival_prob}"
            )
        if not 1 <= work_min <= work_max:
            raise ConfigurationError(
                f"need 1 <= work_min <= work_max, got {work_min}..{work_max}"
            )
        if duration < 1:
            raise ConfigurationError(f"duration must be >= 1, got {duration}")
        self.arrival_prob = arrival_prob
        self.work_min = work_min
        self.work_max = work_max
        self.duration = duration
        self._rng = random.Random(seed)
        self.arrivals = 0
        self.departures = 0

    def attach(self, sim: "Simulation") -> None:
        """No initial population; tasks arrive via :meth:`on_tick`."""

    def on_tick(self, sim: "Simulation") -> None:
        if self._rng.random() >= self.arrival_prob:
            return
        self.arrivals += 1
        task = Task(
            work=self._rng.randint(self.work_min, self.work_max),
            name=f"churn{self.arrivals}",
        )
        sim.place(task, self.placement(sim.machine, task))

    def on_task_finished(self, sim: "Simulation", task: Task,
                         cid: int) -> None:
        self.departures += 1

    def finished(self, sim: "Simulation") -> bool:
        return sim.clock.now >= self.duration

    def describe(self) -> str:
        return (
            f"churn(p={self.arrival_prob}, work {self.work_min}.."
            f"{self.work_max}, {self.duration} ticks)"
        )

"""Barrier-synchronised scientific workload.

The paper's first motivation number: "we have observed many-fold
performance degradation in the case of scientific applications". The
mechanism (from Lozi et al., EuroSys'16) is that barrier-synchronised
programs run at the speed of their slowest thread; when the scheduler
piles several threads onto one core while others idle, every phase takes
as long as the most crowded core needs, and the whole machine waits at
the barrier.

:class:`BarrierWorkload` reproduces that shape: ``n_threads`` workers
execute ``n_phases`` phases of ``phase_work`` units each, meeting at a
barrier after every phase. With a work-conserving balancer the makespan
approaches ``n_phases * phase_work * ceil(n_threads / n_cores)``; with a
broken balancer and packed wakeups it approaches
``n_phases * phase_work * threads_on_most_crowded_core``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError
from repro.core.task import Task, TaskState
from repro.workloads.base import Placement, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulation


class BarrierWorkload(Workload):
    """Fork-join phases with a global barrier between them.

    Attributes:
        n_threads: worker threads.
        n_phases: number of compute phases.
        phase_work: work units per thread per phase (jittered by up to
            ``jitter`` units with the given seed).
        jitter: maximum extra work per thread-phase.
        nice: niceness of the worker threads.
    """

    name = "barrier"

    def __init__(self, n_threads: int, n_phases: int, phase_work: int,
                 placement: Placement | None = None,
                 jitter: int = 0, seed: int = 0, nice: int = 0) -> None:
        super().__init__(placement=placement)
        if n_threads < 1 or n_phases < 1 or phase_work < 1:
            raise ConfigurationError(
                "n_threads, n_phases and phase_work must all be >= 1"
            )
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")
        self.n_threads = n_threads
        self.n_phases = n_phases
        self.phase_work = phase_work
        self.jitter = jitter
        self.nice = nice
        self._rng = random.Random(seed)
        self._tasks: list[Task] = []
        self._phase = 0
        self._arrived: set[int] = set()
        self._done = False

    # ------------------------------------------------------------------

    def _phase_quota(self) -> int:
        return self.phase_work + (
            self._rng.randrange(self.jitter + 1) if self.jitter else 0
        )

    def attach(self, sim: "Simulation") -> None:
        """Create the workers and start phase 0."""
        for i in range(self.n_threads):
            task = Task(
                nice=self.nice,
                work=self._phase_quota(),
                name=f"barrier_w{i}",
            )
            self._tasks.append(task)
            sim.place(task, self.placement(sim.machine, task))

    def on_task_finished(self, sim: "Simulation", task: Task,
                         cid: int) -> None:
        """A worker reached the barrier; release everyone when all arrive."""
        self._arrived.add(task.tid)
        if len(self._arrived) < self.n_threads:
            return
        self._arrived.clear()
        self._phase += 1
        if self._phase >= self.n_phases:
            self._done = True
            return
        for worker in self._tasks:
            worker.work = worker.executed + self._phase_quota()
            worker.state = TaskState.READY
            sim.place(worker, self.placement(sim.machine, worker))

    def finished(self, sim: "Simulation") -> bool:
        """All phases completed by all workers."""
        return self._done

    @property
    def phases_completed(self) -> int:
        """Number of fully completed phases so far."""
        return self._phase

    def ideal_makespan(self, n_cores: int) -> int:
        """Lower bound on ticks with perfect spreading and no jitter."""
        waves = -(-self.n_threads // n_cores)  # ceil division
        return self.n_phases * self.phase_work * waves

    def describe(self) -> str:
        return (
            f"barrier({self.n_threads} threads x {self.n_phases} phases"
            f" x {self.phase_work} work)"
        )

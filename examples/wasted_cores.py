#!/usr/bin/env python3
"""Reproducing the motivation numbers: a decade of wasted cores.

Section 1 of the paper: CFS "has been shown to leave cores idle while
threads are waiting in runqueues ... we have observed many-fold
performance degradation in the case of scientific applications, and up
to 25% decrease in throughput for realistic database workloads."

This example runs both workload shapes on an 8-core, 2-NUMA-node machine
under four schedulers:

* ``null``      — no balancing at all (pathology floor);
* ``cfs-like``  — hierarchical weighted-average balancing with the Group
                  Imbalance bug (what the paper criticises);
* ``verified``  — Listing 1's proven work-conserving balancer;
* ``ideal``     — a teleporting global queue (upper bound).

Run:  python examples/wasted_cores.py
"""

from repro import BalanceCountPolicy, Machine
from repro.baselines import CfsLikeBalancer, GlobalQueueBalancer, NullBalancer
from repro.core.balancer import LoadBalancer
from repro.metrics import relative_loss, render_table, speedup
from repro.sim.engine import Simulation
from repro.topology import build_domain_tree, symmetric_numa
from repro.workloads import BarrierWorkload, OltpWorkload, make_first_k, place_pack

TOPOLOGY = symmetric_numa(n_nodes=2, cores_per_node=4)


def make_balancer(kind: str, machine: Machine):
    if kind == "null":
        return NullBalancer(machine)
    if kind == "cfs-like":
        return CfsLikeBalancer(machine, build_domain_tree(TOPOLOGY))
    if kind == "verified":
        return LoadBalancer(machine, BalanceCountPolicy(),
                            check_invariants=False)
    if kind == "ideal":
        return GlobalQueueBalancer(machine)
    raise ValueError(kind)


def barrier_experiment() -> None:
    """Scientific app: makespan under each scheduler."""
    print("=" * 72)
    print("Scientific application (barrier-synchronised, 16 threads,"
          " 6 phases)")
    print("=" * 72)
    rows = []
    times: dict[str, int] = {}
    for kind in ("null", "cfs-like", "verified", "ideal"):
        machine = Machine(topology=TOPOLOGY)
        workload = BarrierWorkload(
            n_threads=16, n_phases=6, phase_work=25,
            placement=place_pack, seed=1,
        )
        sim = Simulation(machine, make_balancer(kind, machine),
                         workload=workload)
        result = sim.run(max_ticks=50_000)
        times[kind] = result.ticks
        rows.append([
            kind, result.ticks,
            result.metrics.bad_ticks,
            result.metrics.wasted_core_ticks,
            f"{result.metrics.utilization:.2f}",
        ])
    print(render_table(
        ["scheduler", "makespan", "bad ticks", "wasted core-ticks", "util"],
        rows,
    ))
    print(f"\nslowdown of no-balancing vs verified:"
          f" {speedup(times['null'], times['verified']):.1f}x"
          f"   (paper: 'many-fold')")
    print(f"verified vs ideal gap:"
          f" {100 * (times['verified'] / times['ideal'] - 1):.1f}%\n")


def database_experiment() -> None:
    """OLTP: throughput under each scheduler, with a heavy analytics
    thread creating the Group Imbalance conditions."""
    print("=" * 72)
    print("Database workload (10 OLTP workers + 1 heavy analytics thread)")
    print("=" * 72)
    rows = []
    throughput: dict[str, float] = {}
    for kind in ("null", "cfs-like", "verified", "ideal"):
        machine = Machine(topology=TOPOLOGY)
        workload = OltpWorkload(
            n_workers=10, duration=3000,
            placement=make_first_k(5), n_heavy=1, seed=7,
        )
        sim = Simulation(machine, make_balancer(kind, machine),
                         workload=workload)
        result = sim.run(max_ticks=4000)
        throughput[kind] = workload.throughput()
        rows.append([
            kind, f"{workload.throughput():.4f}",
            result.metrics.bad_ticks,
            result.metrics.wasted_core_ticks,
        ])
    print(render_table(
        ["scheduler", "txn/tick", "bad ticks", "wasted core-ticks"], rows,
    ))
    loss = relative_loss(throughput["verified"], throughput["cfs-like"])
    print(f"\nCFS-like throughput loss vs verified: {100 * loss:.1f}%"
          f"   (paper: 'up to 25%')\n")


def main() -> None:
    barrier_experiment()
    database_experiment()


if __name__ == "__main__":
    main()

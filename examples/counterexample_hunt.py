#!/usr/bin/env python3
"""Counterexample hunting: rediscovering the Section 4.3 ping-pong.

The paper shows by hand that replacing Listing 1's filter with
``stealee.load() >= 2`` breaks work conservation: on a three-core machine
[idle, 1, 2] the two non-idle cores can trade a thread forever while the
idle core's steals always fail. This example lets the model checker find
that execution on its own — and then sweeps the filter-margin family to
show *why* Listing 1 uses a margin of exactly 2.

Run:  python examples/counterexample_hunt.py
"""

from repro import BalanceCountPolicy, Machine, NaiveOverloadedPolicy
from repro.core.balancer import LoadBalancer
from repro.sim.interleave import AdversarialInterleaving
from repro.verify import ModelChecker, StateScope, prove_work_conserving


def hunt_naive() -> None:
    """Model-check the §4.3 filter and print the lasso it finds."""
    print("=" * 70)
    print("1. The naive filter:  canSteal(stealee) = stealee.load() >= 2")
    print("=" * 70)
    policy = NaiveOverloadedPolicy()
    checker = ModelChecker(policy)
    analysis = checker.analyze(StateScope(n_cores=3, max_load=2))
    assert analysis.violated, "the checker must find the paper's bug"
    assert analysis.lasso is not None
    print("VIOLATION FOUND (automatically):")
    print(" ", analysis.lasso.describe())
    print(f"  ({analysis.states_explored} states explored,"
          f" {analysis.bad_states} of them wasted-core states)")
    print()


def replay_pingpong() -> None:
    """Replay the lasso on the concrete machine, round by round."""
    print("=" * 70)
    print("2. Concrete replay: the idle core fails forever")
    print("=" * 70)
    machine = Machine.from_loads([0, 1, 2])
    balancer = LoadBalancer(machine, NaiveOverloadedPolicy())
    # Adversarial steal order: the non-idle thief always wins the race.
    for round_no in range(6):
        order = [1, 0] if machine.loads()[1] == 1 else [2, 0]
        record = balancer.run_round(
            interleaving=AdversarialInterleaving(order)
        )
        failures = [
            f"core {a.thief} FAILED against core {a.victim}"
            f" (caused by core {a.invalidated_by})"
            for a in record.failures
        ]
        print(f"round {round_no}: {record.loads_before} ->"
              f" {record.loads_after};", "; ".join(failures))
    print("core 0 is still idle:", machine.core(0).idle)
    print()


def margin_ablation() -> None:
    """Why margin = 2: sweep the filter margin through 1, 2, 3."""
    print("=" * 70)
    print("3. Margin ablation: filter = stealee.load - self.load >= margin")
    print("=" * 70)
    scope = StateScope(n_cores=3, max_load=3)
    for margin in (1, 2, 3):
        cert = prove_work_conserving(BalanceCountPolicy(margin=margin),
                                     scope)
        verdict = ("WORK-CONSERVING, N = "
                   f"{cert.exact_worst_rounds}") if cert.proved else (
            "REFUTED: " + "; ".join(
                f"{r.obligation.key}" for r in cert.report.refuted
            )
        )
        print(f"margin {margin}: {verdict}")
        if cert.analysis.violated:
            print("  lasso:", cert.analysis.lasso.describe())
    print()
    print("margin 1 oscillates (steals between near-equal cores),")
    print("margin 3 under-balances ([0,2] is stuck forever),")
    print("margin 2 — Listing 1 — is the sweet spot the paper proves.")


def main() -> None:
    hunt_naive()
    replay_pingpong()
    margin_ablation()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""NUMA-aware placement lives in step 2 — and costs the proofs nothing.

Section 3.1: "The exact choice of the core does not matter for the
correctness proof. This provides a notable simplification of the proving
effort as the counterpart of the choice step in legacy OSes usually
contains all the complex heuristics used to perform smart thread
placement (e.g., giving priority to some core to improve cache locality,
NUMA-aware decisions, etc.)."

This example demonstrates both halves of that claim:

1. **Same proofs.** The default-choice and NUMA-aware-choice policies
   share one filter, and `prove_work_conserving` — which quantifies over
   *every* choice — yields the same certificate for both.
2. **Different placement.** On a 2-node machine with remote-migration
   penalties, the NUMA-aware choice steals locally when it can, cutting
   cross-node migrations and cache warm-up time on a fork/join workload.

Also runs the Section 5 extension: hierarchical (inter-group then
intra-group) balancing on the same machine.

Run:  python examples/numa_placement.py
"""

from repro import BalanceCountPolicy, Machine, NumaAwareChoicePolicy
from repro.core.balancer import LoadBalancer
from repro.metrics import render_table
from repro.policies import HierarchicalBalancer
from repro.sim.engine import Simulation
from repro.topology import CacheModel, build_domain_tree, symmetric_numa
from repro.verify import StateScope, prove_work_conserving
from repro.workloads import ForkJoinWorkload

TOPOLOGY = symmetric_numa(n_nodes=2, cores_per_node=4)


def same_proofs() -> None:
    print("=" * 72)
    print("1. Choice-irrelevance: identical certificates")
    print("=" * 72)
    scope = StateScope(n_cores=4, max_load=3)
    default_policy = BalanceCountPolicy()
    numa_policy = NumaAwareChoicePolicy(TOPOLOGY)
    for policy in (default_policy, numa_policy):
        cert = prove_work_conserving(policy, scope)
        print(f"{policy.name:>40}: proved={cert.proved},"
              f" N={cert.exact_worst_rounds},"
              f" potential bound N<={cert.potential_bound}")
    print()
    print("Same filter, same obligations, same bound: the NUMA heuristic")
    print("was free, exactly as the paper promises.")
    print()


def different_placement() -> None:
    print("=" * 72)
    print("2. Placement quality: migrations and cache warm-up")
    print("=" * 72)
    cache = CacheModel(
        topology=TOPOLOGY, llc_group_size=4,
        shared_llc_penalty=0, same_node_penalty=1, remote_node_penalty=4,
    )
    rows = []
    for policy in (BalanceCountPolicy(), NumaAwareChoicePolicy(TOPOLOGY)):
        machine = Machine(topology=TOPOLOGY)
        balancer = LoadBalancer(machine, policy, check_invariants=False)
        workload = ForkJoinWorkload(depth=7, node_work=4)
        sim = Simulation(machine, balancer, workload=workload,
                         cache_model=cache)
        result = sim.run(max_ticks=30_000)
        remote = sum(
            1 for record in balancer.rounds for a in record.successes
            if not TOPOLOGY.same_node(a.thief, a.victim)
        )
        total = sum(len(r.successes) for r in balancer.rounds)
        rows.append([
            policy.name, result.ticks, total, remote,
            result.metrics.warmup_ticks,
        ])
    print(render_table(
        ["policy", "makespan", "steals", "remote steals", "warmup ticks"],
        rows,
    ))
    print()


def hierarchical_extension() -> None:
    print("=" * 72)
    print("3. Section 5 extension: hierarchical balancing")
    print("=" * 72)
    machine = Machine.from_loads([8, 4, 2, 0, 0, 0, 0, 0],
                                 topology=TOPOLOGY)
    balancer = HierarchicalBalancer(
        machine, build_domain_tree(TOPOLOGY, group_size=2)
    )
    rounds = balancer.run_until_work_conserving(max_rounds=100)
    print(f"loads [8,4,2,0,0,0,0,0] -> {machine.loads()}"
          f" in {rounds} hierarchical rounds")
    print("(inter-group steals first, then intra-group — same three-step")
    print(" abstraction at each level, same per-level obligations)")


def main() -> None:
    same_proofs()
    different_placement()
    hierarchical_extension()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The verification workflow at scale: matrix, campaign, and convergence.

Where quickstart.py proves one policy, this example runs the workflow a
scheduler team would run before shipping a policy change:

1. **the verdict matrix** — every obligation crossed with the whole
   policy zoo, making the failure structure visible (the naive filter's
   row reads: Lemma1 fine, everything concurrent broken);
2. **a randomised campaign** — thousands of adversarial rounds on random
   machines far larger than any exhaustive scope, hunting for obligation
   violations the proofs might have missed at scope;
3. **convergence profiles** — the potential function's trajectory for
   one-task vs. half-gap stealing, with fitted contraction rates (the
   Xu & Lau analysis thread from the paper's related work).

Run:  python examples/verification_campaign.py
"""

from repro.metrics import render_table
from repro.policies import BalanceCountPolicy, GreedyHalvingPolicy
from repro.verify import (
    CampaignConfig,
    StateScope,
    default_zoo,
    geometric_rate,
    potential_series,
    run_campaign,
    verify_zoo,
)


def matrix() -> None:
    print("=" * 72)
    print("1. The verdict matrix (every obligation x the policy zoo)")
    print("=" * 72)
    report = verify_zoo(default_zoo(), StateScope(n_cores=3, max_load=2))
    print(report.render())
    print()


def campaign() -> None:
    print("=" * 72)
    print("2. Randomised campaign (beyond exhaustive scopes)")
    print("=" * 72)
    config = CampaignConfig(n_machines=40, max_cores=16, max_load=10,
                            rounds_per_machine=25, seed=42)
    report = run_campaign(BalanceCountPolicy, config)
    print(report.describe())
    assert report.clean, "Listing 1 must survive the campaign"

    from repro.policies import NaiveOverloadedPolicy

    naive_report = run_campaign(NaiveOverloadedPolicy, config)
    print(naive_report.describe())
    if not naive_report.clean:
        print("  first violation:", naive_report.violations[0])
    print()


def convergence() -> None:
    print("=" * 72)
    print("3. Convergence profiles (potential d across rounds)")
    print("=" * 72)
    loads = [48, 0, 0, 0, 0, 0, 0, 0]
    rows = []
    for policy in (BalanceCountPolicy(), GreedyHalvingPolicy()):
        profile = potential_series(policy, loads)
        rate = geometric_rate(profile.d_series)
        rows.append([
            policy.name,
            profile.d_series[0],
            profile.rounds_to_work_conserving,
            profile.rounds_to_quiescent,
            f"{rate:.3f}",
            profile.total_steals,
        ])
    print(render_table(
        ["policy", "d0", "rounds to WC", "rounds to balance",
         "contraction rate", "steals"],
        rows,
    ))
    print()
    print("half-gap stealing contracts d faster per round, at the price")
    print("of larger task batches per steal — same certificate either way.")


def main() -> None:
    matrix()
    campaign()
    convergence()


if __name__ == "__main__":
    main()

"""Never pay for the same proof twice: the content-addressed store.

Runs a small verification sweep cold, then re-runs it against the same
store and shows every result arriving as a ``ResultReused`` event — no
state exploration, byte-identical reports. The same store serves every
entry point: a zoo run warms the per-policy entries a later ``verify``
of one lineup row will hit, and vice versa.

Run with:  PYTHONPATH=src python examples/incremental_reuse.py
"""

import tempfile
import time

from repro.api import ProgressEvent, ResultReused, Session, VerificationRequest
from repro.store import FileStore, store_key


def sweep():
    """Three proofs and a counterexample hunt."""
    requests = [
        VerificationRequest.builder("prove").policy(name).build()
        for name in ("balance_count", "greedy_halving", "provable_weighted")
    ]
    requests.append(
        VerificationRequest.builder("hunt")
        .policy("naive").scope(cores=3, max_load=2).build()
    )
    return requests


def narrate(event: ProgressEvent) -> None:
    if isinstance(event, ResultReused):
        print(f"  reused {event.key[:12]} for"
              f" {event.request.describe()}")


def run_sweep(store: FileStore, label: str) -> list:
    session = Session(subscribers=[narrate], store=store)
    start = time.perf_counter()
    results = [session.run(request) for request in sweep()]
    print(f"{label}: {len(results)} results"
          f" in {time.perf_counter() - start:.3f}s")
    return results


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store = FileStore(tmp)

        print("cold sweep (every proof runs):")
        cold = run_sweep(store, "cold")

        print("\nwarm sweep (every proof served from the store):")
        warm = run_sweep(store, "warm")

        assert all(w.render() == c.render()
                   for w, c in zip(warm, cold))
        print("\nwarm reports are byte-identical to cold ones.")

        # The address is a pure function of the request: compute it
        # without running anything.
        request = sweep()[0]
        print(f"\n{request.describe()!r} lives at"
              f" {store_key(request)[:16]}... in {store.root}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: the three-step balancer, its proof, and its execution.

Reproduces the paper's core loop in ~60 lines of user code:

1. build the three-core machine of Section 4.3 — idle, 1 thread,
   2 threads;
2. run Listing 1's load balancer (filter / choice / steal) and watch the
   round records, including the lock-free selection and the locked steal;
3. verify the policy: Lemma1, steal soundness, potential decrease, and
   full work conservation with an explicit round bound N.

Run:  python examples/quickstart.py
"""

from repro import BalanceCountPolicy, LoadBalancer, Machine
from repro.verify import StateScope, prove_work_conserving


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The Section 4.3 machine: cores with loads [0, 1, 2].
    # ------------------------------------------------------------------
    machine = Machine.from_loads([0, 1, 2])
    print("initial loads:", machine.loads())
    print("idle cores:", machine.idle_cores(),
          "overloaded cores:", machine.overloaded_cores())

    # ------------------------------------------------------------------
    # 2. Listing 1's policy, executed round by round.
    # ------------------------------------------------------------------
    policy = BalanceCountPolicy(margin=2)
    balancer = LoadBalancer(machine, policy)

    round_no = 0
    while not machine.is_work_conserving_state():
        record = balancer.run_round()
        round_no += 1
        print(f"round {round_no}: loads {record.loads_before} ->"
              f" {record.loads_after}")
        for attempt in record.attempts:
            if attempt.victim is None:
                continue
            print(f"  core {attempt.thief} -> core {attempt.victim}:"
                  f" {attempt.outcome.value}"
                  f" (candidates were {list(attempt.candidates)})")

    print("work-conserving state reached:", machine.loads())
    print()

    # ------------------------------------------------------------------
    # 3. The proof: every Section 4 obligation, plus model checking.
    # ------------------------------------------------------------------
    scope = StateScope(n_cores=3, max_load=4)
    certificate = prove_work_conserving(policy, scope)
    print(certificate.render())

    assert certificate.proved, "Listing 1 must verify!"
    print()
    print(f"==> {policy.name} is work-conserving at scope"
          f" {scope.describe()};")
    print(f"    exact worst-case rounds N = "
          f"{certificate.exact_worst_rounds}, potential-function bound"
          f" N <= {certificate.potential_bound}.")


if __name__ == "__main__":
    main()

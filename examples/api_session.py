"""Drive the verification stack through the typed API.

Everything the CLI does is three nouns away: build a
``VerificationRequest``, run it on a ``Session``, inspect the typed
``VerificationResult``. This example proves Listing 1's policy, watches
the model checker's progress through subscriber events, re-runs the
same request on the pool engine to show the verdict is
engine-independent, and round-trips the result through lossless JSON.

Run with:  PYTHONPATH=src python examples/api_session.py
"""

from repro.api import (
    EngineSpec,
    LevelCompleted,
    PolicyFinished,
    ProgressEvent,
    Session,
    StatesExplored,
    VerificationRequest,
    loads_result,
    with_engine,
)


def narrate(event: ProgressEvent) -> None:
    """A subscriber: structured events, not log lines."""
    if isinstance(event, StatesExplored):
        print(f"  ... {event.states} states explored")
    elif isinstance(event, LevelCompleted):
        print(f"  ... BFS level {event.level}: {event.states_expanded}"
              f" expanded, frontier {event.frontier}")
    elif isinstance(event, PolicyFinished):
        verdict = "proved" if event.proved else "REFUTED"
        print(f"  ... zoo {event.index + 1}/{event.total}"
              f" {event.policy}: {verdict}")


def main() -> None:
    # 1. A model-check hunt, with exploration progress streamed to a
    #    subscriber (structured events, not parsed log lines).
    hunt = (VerificationRequest.builder("hunt")
            .policy("balance_count").scope(cores=3, max_load=3)
            .build())
    print("== hunt, serial engine ==")
    session = Session(subscribers=[narrate], expand_stride=25)
    hunted = session.run(hunt)
    print(f"hunt verdict: {hunted.verdict.value}"
          f" over {hunted.analysis.states_explored} states")

    # 2. The full proof pipeline for the same policy.
    request = (VerificationRequest.builder("prove")
               .policy("balance_count", margin=2)
               .scope(cores=3, max_load=3)
               .build())
    print("\n== full proof, serial engine ==")
    result = session.run(request)
    print(f"verdict: {result.verdict.value}"
          f" (exact N = {result.certificate.exact_worst_rounds},"
          f" bound N <= {result.certificate.potential_bound})")

    # 3. Same request, different engine: the verdict cannot change.
    print("\n== pool engine, 2 workers ==")
    pooled = Session().run(
        with_engine(request, EngineSpec(kind="pool", jobs=2))
    )
    assert pooled.normalized().certificate == result.normalized().certificate
    print("pool verdict identical:", pooled.verdict.value)

    # 4. Results are data: lossless JSON round-trip.
    blob = result.to_json()
    restored = loads_result(blob)
    assert restored == result
    print(f"\nresult round-tripped through {len(blob)} bytes of JSON")
    print("final verdict:", "work-conserving" if result.ok else "refuted")


if __name__ == "__main__":
    main()

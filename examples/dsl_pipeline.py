#!/usr/bin/env python3
"""The DSL pipeline: one policy source, three targets.

The paper's toolchain vision: scheduling policies are written in a DSL
and compiled both "to C code that can be integrated as a scheduling
class into the Linux kernel, and to Scala code that is verified by the
Leon toolkit". This example walks Listing 1 through the reproduction of
that pipeline:

    source --> parse --> validate --> | executable Python policy (verified)
                                      | C scheduling-class skeleton
                                      | Leon-style Scala

Run:  python examples/dsl_pipeline.py
"""

from repro.dsl import (
    LISTING1_SOURCE,
    compile_policy,
    emit_c,
    emit_scala,
    parse_policy,
    selection_phase_reads,
)
from repro.verify import StateScope, prove_work_conserving


def main() -> None:
    print("=" * 72)
    print("DSL source (Listing 1 of the paper)")
    print("=" * 72)
    print(LISTING1_SOURCE)

    # ------------------------------------------------------------------
    # Front end: parse + validate.
    # ------------------------------------------------------------------
    decl = parse_policy(LISTING1_SOURCE)
    print(f"parsed policy {decl.name!r}; choice strategy: {decl.choice}")
    print("selection phase reads (all read-only by construction):",
          sorted(selection_phase_reads(decl)))
    print()

    # ------------------------------------------------------------------
    # Target 1: executable policy, straight into the verifier.
    # ------------------------------------------------------------------
    policy = compile_policy(LISTING1_SOURCE)
    certificate = prove_work_conserving(
        policy, StateScope(n_cores=3, max_load=4)
    )
    print("=" * 72)
    print("Target 1 — Python policy, verified")
    print("=" * 72)
    print(certificate.render())
    assert certificate.proved
    print()

    # ------------------------------------------------------------------
    # Target 2: C scheduling class.
    # ------------------------------------------------------------------
    print("=" * 72)
    print("Target 2 — C scheduling-class skeleton (excerpt)")
    print("=" * 72)
    c_source = emit_c(decl)
    in_fn = False
    for line in c_source.splitlines():
        if line.startswith("static bool") or line.startswith("const struct"):
            in_fn = True
        if in_fn:
            print(line)
        if in_fn and line == "}":
            in_fn = False
        if line.startswith("};"):
            break
    print(f"[... {len(c_source.splitlines())} lines total ...]")
    print()

    # ------------------------------------------------------------------
    # Target 3: Leon-style Scala (Listings 1 and 2).
    # ------------------------------------------------------------------
    print("=" * 72)
    print("Target 3 — Leon-style Scala (Lemma1 excerpt)")
    print("=" * 72)
    scala_source = emit_scala(decl)
    emit = False
    for line in scala_source.splitlines():
        if "def Lemma1" in line:
            emit = True
        if emit:
            print(line)
        if emit and ".holds" in line:
            break
    print(f"[... {len(scala_source.splitlines())} lines total ...]")


if __name__ == "__main__":
    main()
